//! Properties — static labels and active behaviours attached to documents.
//!
//! Properties are the paper's core abstraction: "statements about the
//! context of a document or the intended behavior for the document". Static
//! properties are name/value labels (`budget related`,
//! `1999 workshop submission`); active properties are executable objects
//! that register for document events and may interpose custom streams on the
//! read and write paths, vote on cacheability, contribute replacement
//! costs, and ship verifiers to caches.
//!
//! Properties attached to a *base document* are **universal** (seen by every
//! user holding a reference); properties attached to a *document reference*
//! are **personal** (seen only by the reference's owner). Both live in an
//! ordered [`PropertyList`] — order matters, because transform chains
//! compose in attachment order and reordering is one of the paper's four
//! invalidation causes.

use crate::cacheability::Cacheability;
use crate::content::PropertyValue;
use crate::cost::ReplacementCost;
use crate::digest::Signature;
use crate::error::{PlacelessError, Result};
use crate::event::{DocumentEvent, EventSite, Interests};
use crate::id::{DocumentId, PropertyId, UserId};
use crate::notifier::InvalidationBus;
use crate::streams::{InputStream, OutputStream};
use crate::verifier::Verifier;
use parking_lot::Mutex;
use placeless_simenv::VirtualClock;
use std::sync::Arc;

/// A snapshot of the static property values visible on a read/write path,
/// personal (reference) values shadowing universal (base) ones.
#[derive(Debug, Clone, Default)]
pub struct PropsSnapshot {
    pairs: Vec<(String, PropertyValue)>,
}

impl PropsSnapshot {
    /// Builds a snapshot; earlier pairs shadow later ones, so callers push
    /// reference-scope values before base-scope values.
    pub fn from_pairs(pairs: Vec<(String, PropertyValue)>) -> Self {
        Self { pairs }
    }

    /// Looks up the first (most personal) value under `name`.
    pub fn get(&self, name: &str) -> Option<&PropertyValue> {
        self.pairs.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Returns the number of visible static properties.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if no static properties are visible.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Context handed to a property while a read or write path is assembled.
pub struct PathCtx<'a> {
    /// The shared virtual clock; properties charge their execution time
    /// against it.
    pub clock: &'a VirtualClock,
    /// The base document the path is for.
    pub doc: DocumentId,
    /// The user whose reference initiated the path.
    pub user: UserId,
    /// Where the executing property is attached.
    pub site: EventSite,
    /// Static property values visible on this path (personal shadowing
    /// universal), so properties can depend on e.g. `preferredLanguage`.
    pub props: &'a PropsSnapshot,
}

/// Per-stage record of one property's contribution to a read path.
///
/// Produced by the staged transform plan ([`crate::plan::TransformPlan`])
/// so callers can see *where* a read spent its time and which stages were
/// satisfied from the cache's intermediate-result store.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// The property's name.
    pub name: String,
    /// Where the property is attached (base or a user's reference).
    pub site: EventSite,
    /// The stage's declared execution cost in microseconds. Recorded even
    /// when the stage was served from cache (it still contributes to the
    /// entry's replacement cost — the cost to reproduce without a cache).
    pub cost_micros: u64,
    /// `true` if the stage output came from the intermediate-result cache
    /// instead of executing the transform.
    pub cached: bool,
    /// The stage signature, when the stage is content-addressable
    /// (`None` for opaque stages that declared no transform token).
    pub signature: Option<Signature>,
    /// How many bytes the stage produced (its output length). Zero when
    /// unknown — stream-wrapped replays observe no byte count, and cache
    /// hits adopt the stored entry's length instead.
    pub bytes: u64,
}

/// What the read path reports back alongside the content stream.
///
/// As the bit-provider and each property execute, they accumulate the three
/// things the cache needs: the cacheability indicator, the replacement cost,
/// and the verifier set.
pub struct PathReport {
    /// Aggregated (most restrictive) cacheability vote.
    pub cacheability: Cacheability,
    /// Accumulated replacement cost.
    pub cost: ReplacementCost,
    /// Verifiers the cache must run on every hit.
    pub verifiers: Vec<Box<dyn Verifier>>,
    /// Names of the properties that executed, in execution order.
    pub executed: Vec<String>,
    /// Per-stage cost/hit breakdown, in execution order (one record per
    /// chain stage when the path was driven by a [`crate::plan::TransformPlan`]).
    pub stages: Vec<StageRecord>,
    /// Whether a QoS property demanded the entry be pinned (never
    /// evicted) — the `always available` requirement.
    pub pinned: bool,
}

impl PathReport {
    /// Creates a report with an initial fetch cost from the bit-provider.
    pub fn new(fetch_cost_micros: u64) -> Self {
        Self {
            cacheability: Cacheability::Unrestricted,
            cost: ReplacementCost::from_fetch(fetch_cost_micros),
            verifiers: Vec::new(),
            executed: Vec::new(),
            stages: Vec::new(),
            pinned: false,
        }
    }

    /// Registers a cacheability vote (kept if more restrictive).
    pub fn vote(&mut self, vote: Cacheability) {
        self.cacheability = self.cacheability.combine(vote);
    }

    /// Adds a property execution cost.
    pub fn add_cost(&mut self, micros: u64) {
        self.cost.add_micros(micros);
    }

    /// Applies a QoS cost-inflation factor.
    pub fn inflate_cost(&mut self, factor: f64) {
        self.cost.inflate(factor);
    }

    /// Ships a verifier to the cache.
    pub fn add_verifier(&mut self, verifier: Box<dyn Verifier>) {
        self.verifiers.push(verifier);
    }

    /// Requests that the cache pin the entry (never evict it).
    pub fn pin(&mut self) {
        self.pinned = true;
    }

    /// Records a per-stage breakdown entry.
    pub fn record_stage(&mut self, record: StageRecord) {
        self.stages.push(record);
    }

    /// Returns how many stages were served from the intermediate cache.
    pub fn stage_hits(&self) -> usize {
        self.stages.iter().filter(|s| s.cached).count()
    }
}

impl Default for PathReport {
    fn default() -> Self {
        Self::new(0)
    }
}

impl std::fmt::Debug for PathReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathReport")
            .field("cacheability", &self.cacheability)
            .field("cost", &self.cost)
            .field("verifiers", &self.verifiers.len())
            .field("executed", &self.executed)
            .field("stages", &self.stages)
            .field("pinned", &self.pinned)
            .finish()
    }
}

/// A deferred mutation requested by a property during event handling.
///
/// Properties may not mutate the document they are attached to while the
/// middleware holds its locks; instead they queue follow-ups which the
/// document space applies after dispatch completes. The versioning property
/// uses this to add its `version:N` links to the base document.
#[derive(Debug, Clone)]
pub enum FollowUp {
    /// Attach a static property.
    AttachStatic {
        /// Document to attach to.
        doc: DocumentId,
        /// Base or a user's reference.
        site: EventSite,
        /// Property name.
        name: String,
        /// Property value.
        value: PropertyValue,
    },
}

/// Context handed to a property when a registered event fires.
pub struct EventCtx<'a> {
    /// The shared virtual clock.
    pub clock: &'a VirtualClock,
    /// The invalidation bus; notifier properties post here.
    pub bus: &'a InvalidationBus,
    followups: Mutex<Vec<FollowUp>>,
}

impl<'a> EventCtx<'a> {
    /// Creates an event context.
    pub fn new(clock: &'a VirtualClock, bus: &'a InvalidationBus) -> Self {
        Self {
            clock,
            bus,
            followups: Mutex::new(Vec::new()),
        }
    }

    /// Queues a deferred mutation to apply after dispatch.
    pub fn request(&self, followup: FollowUp) {
        self.followups.lock().push(followup);
    }

    /// Drains the queued follow-ups (used by the document space).
    pub fn take_followups(&self) -> Vec<FollowUp> {
        std::mem::take(&mut self.followups.lock())
    }
}

/// An executable behaviour attached to a document.
///
/// Implementations override the hooks for the events they register for in
/// [`ActiveProperty::interests`]:
///
/// * `wrap_input` runs while a `GetInputStream` path is assembled and may
///   interpose a custom input stream;
/// * `wrap_output` is the write-path mirror;
/// * `on_event` handles non-stream events (property mutations, timers,
///   content-written, forwarded cache events).
///
/// The default hook implementations do nothing, so a label-like property
/// only implements what it needs.
pub trait ActiveProperty: Send + Sync {
    /// Returns the property's name (unique per document is conventional,
    /// not enforced).
    fn name(&self) -> &str;

    /// Returns the events this property wants to receive.
    fn interests(&self) -> Interests;

    /// Returns the simulated execution cost charged each time the property
    /// runs on a path, in microseconds. This is also the value added to the
    /// document's replacement cost, following the prototype ("the cost
    /// values used in the implementation are the execution times of each of
    /// the active properties").
    fn execution_cost_micros(&self) -> u64 {
        0
    }

    /// Interposes on the read path. The default passes `inner` through.
    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        Ok(inner)
    }

    /// Interposes on the write path. The default passes `inner` through.
    fn wrap_output(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn OutputStream>,
    ) -> Result<Box<dyn OutputStream>> {
        Ok(inner)
    }

    /// Handles a non-stream event. The default ignores it.
    fn on_event(&self, _ctx: &EventCtx<'_>, _event: &DocumentEvent) -> Result<()> {
        Ok(())
    }

    /// The property's cacheability requirement for *writes* (§3: "With a
    /// write-back cache, active properties on the write-path may need to
    /// register their cacheability requirements as well"). Most properties
    /// are content to execute on the write-back flush
    /// ([`Cacheability::Unrestricted`]); a property that must "know exactly
    /// when each write-operation occurs" returns
    /// [`Cacheability::CacheableWithEvents`] so the cache forwards
    /// `CacheWrite` events per buffered write.
    fn write_cacheability(&self) -> Cacheability {
        Cacheability::Unrestricted
    }

    /// Declares the property's read-path transform as content-addressable.
    ///
    /// The returned token must change whenever the transform *function*
    /// changes: it should fold in the property's parameters, any static
    /// property values the transform reads from [`PathCtx::props`], and a
    /// `(name, epoch)` pair for every external input. The plan compiler
    /// hashes `(input signature, property name, token)` into a *stage
    /// signature* under which the cache may retain the stage's output; a
    /// stale token would therefore serve stale bytes.
    ///
    /// The default (`None`) marks the stage *opaque*: its output is never
    /// cached, it executes on every read, and the signature chain restarts
    /// from a digest of its actual output so downstream stages remain
    /// cacheable. Properties whose `wrap_input` has side effects beyond the
    /// pure byte transform (or that cannot enumerate their inputs) must
    /// keep the default.
    fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        None
    }
}

/// A property attached to a document: either a static label or an active
/// behaviour.
#[derive(Clone)]
pub enum AttachedProperty {
    /// A static name/value label.
    Static {
        /// Property name.
        name: String,
        /// Property value.
        value: PropertyValue,
    },
    /// An active property object.
    Active(Arc<dyn ActiveProperty>),
}

impl AttachedProperty {
    /// Returns the property's name.
    pub fn name(&self) -> &str {
        match self {
            AttachedProperty::Static { name, .. } => name,
            AttachedProperty::Active(p) => p.name(),
        }
    }

    /// Returns the active property, if this is one.
    pub fn as_active(&self) -> Option<&Arc<dyn ActiveProperty>> {
        match self {
            AttachedProperty::Active(p) => Some(p),
            AttachedProperty::Static { .. } => None,
        }
    }

    /// Returns the static value, if this is a static property.
    pub fn as_static(&self) -> Option<&PropertyValue> {
        match self {
            AttachedProperty::Static { value, .. } => Some(value),
            AttachedProperty::Active(_) => None,
        }
    }
}

impl std::fmt::Debug for AttachedProperty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachedProperty::Static { name, value } => {
                write!(f, "Static({name}={value})")
            }
            AttachedProperty::Active(p) => write!(f, "Active({})", p.name()),
        }
    }
}

/// One attached property with its identity.
#[derive(Debug, Clone)]
pub struct PropertySlot {
    /// The property's id within its document space.
    pub id: PropertyId,
    /// The property itself.
    pub prop: AttachedProperty,
}

/// An ordered collection of properties attached to a base document or to a
/// document reference.
#[derive(Debug, Default)]
pub struct PropertyList {
    slots: Vec<PropertySlot>,
}

impl PropertyList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a property under the given id.
    pub fn attach(&mut self, id: PropertyId, prop: AttachedProperty) {
        self.slots.push(PropertySlot { id, prop });
    }

    /// Removes a property by id, returning it.
    pub fn remove(&mut self, id: PropertyId) -> Result<AttachedProperty> {
        match self.slots.iter().position(|s| s.id == id) {
            Some(i) => Ok(self.slots.remove(i).prop),
            None => Err(PlacelessError::NoSuchProperty(id)),
        }
    }

    /// Replaces a property in place (a *modification*, e.g. upgrading the
    /// spelling corrector to a new release), preserving its position.
    pub fn replace(&mut self, id: PropertyId, prop: AttachedProperty) -> Result<()> {
        match self.slots.iter_mut().find(|s| s.id == id) {
            Some(slot) => {
                slot.prop = prop;
                Ok(())
            }
            None => Err(PlacelessError::NoSuchProperty(id)),
        }
    }

    /// Moves a property to a new index (a *reorder*; clamped to the end).
    pub fn move_to(&mut self, id: PropertyId, index: usize) -> Result<()> {
        let from = self
            .slots
            .iter()
            .position(|s| s.id == id)
            .ok_or(PlacelessError::NoSuchProperty(id))?;
        let slot = self.slots.remove(from);
        let index = index.min(self.slots.len());
        self.slots.insert(index, slot);
        Ok(())
    }

    /// Looks up a property by id.
    pub fn get(&self, id: PropertyId) -> Option<&PropertySlot> {
        self.slots.iter().find(|s| s.id == id)
    }

    /// Looks up the first property with the given name.
    pub fn find_by_name(&self, name: &str) -> Option<&PropertySlot> {
        self.slots.iter().find(|s| s.prop.name() == name)
    }

    /// Returns the value of the first *static* property with this name.
    pub fn static_value(&self, name: &str) -> Option<&PropertyValue> {
        self.slots
            .iter()
            .filter(|s| s.prop.name() == name)
            .find_map(|s| s.prop.as_static())
    }

    /// Iterates over all slots in order.
    pub fn iter(&self) -> impl Iterator<Item = &PropertySlot> {
        self.slots.iter()
    }

    /// Iterates over the active properties in order.
    pub fn actives(&self) -> impl Iterator<Item = &Arc<dyn ActiveProperty>> {
        self.slots.iter().filter_map(|s| s.prop.as_active())
    }

    /// Returns the active properties interested in `kind`, in order.
    pub fn interested(&self, kind: crate::event::EventKind) -> Vec<Arc<dyn ActiveProperty>> {
        self.actives()
            .filter(|p| p.interests().contains(kind))
            .cloned()
            .collect()
    }

    /// Collects `(name, value)` pairs of all static properties, in order.
    pub fn static_pairs(&self) -> Vec<(String, PropertyValue)> {
        self.slots
            .iter()
            .filter_map(|s| match &s.prop {
                AttachedProperty::Static { name, value } => Some((name.clone(), value.clone())),
                AttachedProperty::Active(_) => None,
            })
            .collect()
    }

    /// Returns the number of attached properties.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no properties are attached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    struct Dummy {
        name: String,
        interests: Interests,
    }

    impl Dummy {
        fn arc(name: &str, interests: Interests) -> Arc<dyn ActiveProperty> {
            Arc::new(Self {
                name: name.to_owned(),
                interests,
            })
        }
    }

    impl ActiveProperty for Dummy {
        fn name(&self) -> &str {
            &self.name
        }
        fn interests(&self) -> Interests {
            self.interests
        }
    }

    fn stat(name: &str, value: &str) -> AttachedProperty {
        AttachedProperty::Static {
            name: name.to_owned(),
            value: value.into(),
        }
    }

    #[test]
    fn attach_remove_roundtrip() {
        let mut list = PropertyList::new();
        list.attach(PropertyId(1), stat("budget related", "yes"));
        assert_eq!(list.len(), 1);
        let removed = list.remove(PropertyId(1)).unwrap();
        assert_eq!(removed.name(), "budget related");
        assert!(list.is_empty());
        assert_eq!(
            list.remove(PropertyId(1)).unwrap_err(),
            PlacelessError::NoSuchProperty(PropertyId(1))
        );
    }

    #[test]
    fn replace_preserves_position() {
        let mut list = PropertyList::new();
        list.attach(PropertyId(1), stat("a", "1"));
        list.attach(PropertyId(2), stat("b", "2"));
        list.attach(PropertyId(3), stat("c", "3"));
        list.replace(PropertyId(2), stat("b2", "2.1")).unwrap();
        let names: Vec<&str> = list.iter().map(|s| s.prop.name()).collect();
        assert_eq!(names, vec!["a", "b2", "c"]);
        assert!(list.replace(PropertyId(9), stat("x", "x")).is_err());
    }

    #[test]
    fn move_to_reorders() {
        let mut list = PropertyList::new();
        list.attach(PropertyId(1), stat("a", ""));
        list.attach(PropertyId(2), stat("b", ""));
        list.attach(PropertyId(3), stat("c", ""));
        list.move_to(PropertyId(3), 0).unwrap();
        let names: Vec<&str> = list.iter().map(|s| s.prop.name()).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
        // Clamped past the end.
        list.move_to(PropertyId(3), 99).unwrap();
        let names: Vec<&str> = list.iter().map(|s| s.prop.name()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn interested_filters_by_kind_in_order() {
        let mut list = PropertyList::new();
        list.attach(
            PropertyId(1),
            AttachedProperty::Active(Dummy::arc(
                "reader",
                Interests::of(&[EventKind::GetInputStream]),
            )),
        );
        list.attach(PropertyId(2), stat("label", "x"));
        list.attach(
            PropertyId(3),
            AttachedProperty::Active(Dummy::arc(
                "both",
                Interests::of(&[EventKind::GetInputStream, EventKind::Timer]),
            )),
        );
        let on_read = list.interested(EventKind::GetInputStream);
        assert_eq!(
            on_read.iter().map(|p| p.name()).collect::<Vec<_>>(),
            vec!["reader", "both"]
        );
        let on_timer = list.interested(EventKind::Timer);
        assert_eq!(on_timer.len(), 1);
        assert_eq!(on_timer[0].name(), "both");
        assert!(list.interested(EventKind::ContentWritten).is_empty());
    }

    #[test]
    fn static_value_skips_actives_with_same_name() {
        let mut list = PropertyList::new();
        list.attach(
            PropertyId(1),
            AttachedProperty::Active(Dummy::arc("lang", Interests::NONE)),
        );
        list.attach(PropertyId(2), stat("lang", "fr"));
        assert_eq!(list.static_value("lang").unwrap().as_str(), Some("fr"));
        assert_eq!(list.static_value("missing"), None);
    }

    #[test]
    fn snapshot_personal_shadows_universal() {
        let snap = PropsSnapshot::from_pairs(vec![
            ("lang".into(), "fr".into()),
            ("lang".into(), "en".into()),
            ("site".into(), "parc".into()),
        ]);
        assert_eq!(snap.get("lang").unwrap().as_str(), Some("fr"));
        assert_eq!(snap.get("site").unwrap().as_str(), Some("parc"));
        assert!(snap.get("other").is_none());
        assert_eq!(snap.len(), 3);
    }

    #[test]
    fn report_aggregates_votes_and_costs() {
        let mut report = PathReport::new(1_000);
        report.vote(Cacheability::Unrestricted);
        report.vote(Cacheability::CacheableWithEvents);
        report.add_cost(500);
        report.inflate_cost(2.0);
        assert_eq!(report.cacheability, Cacheability::CacheableWithEvents);
        assert_eq!(report.cost.raw_micros(), 1_500.0);
        assert_eq!(report.cost.effective_micros(), 3_000.0);
    }

    #[test]
    fn event_ctx_collects_followups() {
        let clock = VirtualClock::new();
        let bus = InvalidationBus::new();
        let ctx = EventCtx::new(&clock, &bus);
        ctx.request(FollowUp::AttachStatic {
            doc: DocumentId(1),
            site: EventSite::Base,
            name: "version:1".into(),
            value: "snapshot".into(),
        });
        let taken = ctx.take_followups();
        assert_eq!(taken.len(), 1);
        assert!(ctx.take_followups().is_empty(), "drained");
    }

    #[test]
    fn default_hooks_pass_through() {
        let prop = Dummy::arc("noop", Interests::NONE);
        let clock = VirtualClock::new();
        let snap = PropsSnapshot::default();
        let ctx = PathCtx {
            clock: &clock,
            doc: DocumentId(1),
            user: UserId(1),
            site: EventSite::Base,
            props: &snap,
        };
        let mut report = PathReport::default();
        let inner: Box<dyn InputStream> = Box::new(crate::streams::MemoryInput::new(
            bytes::Bytes::from_static(b"data"),
        ));
        let mut wrapped = prop.wrap_input(&ctx, &mut report, inner).unwrap();
        assert_eq!(crate::streams::read_all(wrapped.as_mut()).unwrap(), "data");
    }
}
