//! Quality-of-Service properties.
//!
//! §5: "Quality of Service (QoS) properties, like `always available` or
//! `access time < .25 seconds`, may need to specify caching requirements to
//! tailor cache replacement policies. One possibility for QoS properties to
//! influence cache replacement is to inflate replacement costs." This module
//! implements that possibility: a [`QosProperty`] on the read path
//! multiplies the document's replacement cost so cost-aware policies (GDS)
//! keep it resident longer.

use crate::error::Result;
use crate::event::{EventKind, Interests};
use crate::property::{ActiveProperty, PathCtx, PathReport};
use crate::streams::InputStream;
use std::sync::Arc;

/// A QoS requirement expressed as a replacement-cost inflation.
pub struct QosProperty {
    name: String,
    factor: f64,
    pin: bool,
}

impl QosProperty {
    /// Creates a QoS property that multiplies replacement cost by `factor`.
    pub fn with_factor(name: &str, factor: f64) -> Arc<Self> {
        Arc::new(Self {
            name: name.to_owned(),
            factor: factor.max(1.0),
            pin: false,
        })
    }

    /// Creates an `access time < bound` property.
    ///
    /// The inflation is derived from how badly a miss would violate the
    /// bound: a document whose re-fetch takes 10× the bound gets 10× cost.
    /// A document that can be re-fetched within the bound needs no
    /// inflation.
    pub fn access_time_bound(bound_micros: u64, estimated_refetch_micros: u64) -> Arc<Self> {
        let factor = if bound_micros == 0 {
            f64::MAX
        } else {
            estimated_refetch_micros as f64 / bound_micros as f64
        };
        Arc::new(Self {
            name: format!("qos:access-time<{}ms", bound_micros as f64 / 1_000.0),
            factor: factor.max(1.0),
            pin: false,
        })
    }

    /// Creates an `always available` property: a large cost inflation plus
    /// a pin request, the "more flexible mechanism" §5 calls for — the
    /// cache keeps the entry resident regardless of replacement pressure.
    pub fn always_available() -> Arc<Self> {
        Arc::new(Self {
            name: "qos:always-available".to_owned(),
            factor: 1_000.0,
            pin: true,
        })
    }

    /// Returns `true` if this property pins entries.
    pub fn pins(&self) -> bool {
        self.pin
    }

    /// Returns the inflation factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl ActiveProperty for QosProperty {
    fn name(&self) -> &str {
        &self.name
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }

    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        report.inflate_cost(self.factor);
        if self.pin {
            report.pin();
        }
        Ok(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventSite;
    use crate::id::{DocumentId, UserId};
    use crate::property::PropsSnapshot;
    use crate::streams::MemoryInput;
    use placeless_simenv::VirtualClock;

    fn run_through(prop: &dyn ActiveProperty) -> PathReport {
        let clock = VirtualClock::new();
        let snap = PropsSnapshot::default();
        let ctx = PathCtx {
            clock: &clock,
            doc: DocumentId(1),
            user: UserId(1),
            site: EventSite::Base,
            props: &snap,
        };
        let mut report = PathReport::new(100);
        let inner: Box<dyn InputStream> =
            Box::new(MemoryInput::new(bytes::Bytes::from_static(b"x")));
        prop.wrap_input(&ctx, &mut report, inner).unwrap();
        report
    }

    #[test]
    fn factor_inflates_cost_on_read_path() {
        let prop = QosProperty::with_factor("qos:test", 4.0);
        let report = run_through(prop.as_ref());
        assert_eq!(report.cost.effective_micros(), 400.0);
        assert_eq!(report.cost.raw_micros(), 100.0);
    }

    #[test]
    fn access_time_bound_scales_with_violation() {
        // Re-fetch takes 250 ms, bound is 25 ms: 10x inflation.
        let prop = QosProperty::access_time_bound(25_000, 250_000);
        assert_eq!(prop.factor(), 10.0);
        // Re-fetch already within bound: no inflation.
        let cheap = QosProperty::access_time_bound(25_000, 1_000);
        assert_eq!(cheap.factor(), 1.0);
    }

    #[test]
    fn always_available_has_large_factor_and_pins() {
        let prop = QosProperty::always_available();
        assert!(prop.factor() >= 100.0);
        assert!(prop.name().contains("always-available"));
        assert!(prop.pins());
        let report = run_through(prop.as_ref());
        assert!(report.pinned);
        let unpinned = run_through(QosProperty::with_factor("q", 2.0).as_ref());
        assert!(!unpinned.pinned);
    }

    #[test]
    fn factors_below_one_are_clamped() {
        let prop = QosProperty::with_factor("weak", 0.5);
        assert_eq!(prop.factor(), 1.0);
    }

    #[test]
    fn registers_only_for_read_path() {
        let prop = QosProperty::with_factor("q", 2.0);
        assert!(prop.interests().contains(EventKind::GetInputStream));
        assert!(!prop.interests().contains(EventKind::GetOutputStream));
    }
}
