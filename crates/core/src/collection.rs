//! Document collections.
//!
//! §5 flags "mechanisms that tailor caching for related documents (e.g.,
//! contained in a collection)" as uninvestigated future work. This module
//! supplies the substrate: named collections of documents, recorded both in
//! a registry (for efficient member enumeration by caches that want to
//! prefetch) and as a `collection` static property on each member's base
//! document (so membership is visible and mutations flow through the normal
//! property-event machinery — adding a document to a collection fires
//! `PropertySet` like any other attach).

use crate::id::DocumentId;
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};

/// A registry of named document collections.
#[derive(Debug, Default)]
pub struct Collections {
    by_name: RwLock<BTreeMap<String, BTreeSet<DocumentId>>>,
}

impl Collections {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `doc` to the named collection, creating it if needed.
    /// Returns `true` if the document was newly added.
    pub fn add(&self, name: &str, doc: DocumentId) -> bool {
        self.by_name
            .write()
            .entry(name.to_owned())
            .or_default()
            .insert(doc)
    }

    /// Removes `doc` from the named collection; empty collections vanish.
    /// Returns `true` if the document was a member.
    pub fn remove(&self, name: &str, doc: DocumentId) -> bool {
        let mut by_name = self.by_name.write();
        let Some(members) = by_name.get_mut(name) else {
            return false;
        };
        let removed = members.remove(&doc);
        if members.is_empty() {
            by_name.remove(name);
        }
        removed
    }

    /// Returns the members of a collection, sorted.
    pub fn members(&self, name: &str) -> Vec<DocumentId> {
        self.by_name
            .read()
            .get(name)
            .map(|m| m.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Returns the collections `doc` belongs to, sorted.
    pub fn collections_of(&self, doc: DocumentId) -> Vec<String> {
        self.by_name
            .read()
            .iter()
            .filter(|(_, members)| members.contains(&doc))
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Returns all collection names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.by_name.read().keys().cloned().collect()
    }

    /// Returns the number of members in a collection.
    pub fn len_of(&self, name: &str) -> usize {
        self.by_name
            .read()
            .get(name)
            .map(BTreeSet::len)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_enumerate() {
        let collections = Collections::new();
        assert!(collections.add("budget", DocumentId(1)));
        assert!(collections.add("budget", DocumentId(2)));
        assert!(!collections.add("budget", DocumentId(1)), "already there");
        assert_eq!(
            collections.members("budget"),
            vec![DocumentId(1), DocumentId(2)]
        );
        assert_eq!(collections.len_of("budget"), 2);
        assert!(collections.members("other").is_empty());
    }

    #[test]
    fn membership_is_many_to_many() {
        let collections = Collections::new();
        collections.add("budget", DocumentId(1));
        collections.add("drafts", DocumentId(1));
        collections.add("drafts", DocumentId(2));
        assert_eq!(
            collections.collections_of(DocumentId(1)),
            vec!["budget", "drafts"]
        );
        assert_eq!(collections.collections_of(DocumentId(2)), vec!["drafts"]);
        assert!(collections.collections_of(DocumentId(3)).is_empty());
        assert_eq!(collections.names(), vec!["budget", "drafts"]);
    }

    #[test]
    fn remove_cleans_up_empty_collections() {
        let collections = Collections::new();
        collections.add("tmp", DocumentId(1));
        assert!(collections.remove("tmp", DocumentId(1)));
        assert!(!collections.remove("tmp", DocumentId(1)));
        assert!(collections.names().is_empty());
        assert!(!collections.remove("ghost", DocumentId(1)));
    }
}
