//! The property registry: attach-by-name factories.
//!
//! In the original Java system, active properties were code objects loaded
//! into the middleware at runtime. A statically compiled Rust system cannot
//! load arbitrary code, so the registry recovers the paper's dynamism: a
//! property *kind* is registered once (by a crate, at startup), and property
//! *instances* are data — a kind name plus a [`Params`] map — that users
//! attach to documents at runtime. The PropLang crate pushes this further by
//! registering an interpreter-backed kind whose behaviour is itself carried
//! in the parameters.

use crate::content::Params;
use crate::error::{PlacelessError, Result};
use crate::property::ActiveProperty;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A factory producing active-property instances from parameters.
pub type PropertyFactory = Box<dyn Fn(&Params) -> Result<Arc<dyn ActiveProperty>> + Send + Sync>;

/// A name → factory map for instantiating active properties at runtime.
///
/// # Examples
///
/// ```
/// use placeless_core::content::Params;
/// use placeless_core::event::Interests;
/// use placeless_core::property::ActiveProperty;
/// use placeless_core::registry::PropertyRegistry;
/// use std::sync::Arc;
///
/// struct Label(String);
/// impl ActiveProperty for Label {
///     fn name(&self) -> &str { &self.0 }
///     fn interests(&self) -> Interests { Interests::NONE }
/// }
///
/// let registry = PropertyRegistry::new();
/// registry.register("label", |params| {
///     let text = params.get_str("text").unwrap_or("unnamed").to_owned();
///     Ok(Arc::new(Label(text)))
/// });
/// let prop = registry.instantiate("label", &Params::new().with("text", "hi")).unwrap();
/// assert_eq!(prop.name(), "hi");
/// ```
#[derive(Default)]
pub struct PropertyRegistry {
    factories: RwLock<HashMap<String, PropertyFactory>>,
}

impl PropertyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory under `kind`, replacing any previous one.
    pub fn register(
        &self,
        kind: &str,
        factory: impl Fn(&Params) -> Result<Arc<dyn ActiveProperty>> + Send + Sync + 'static,
    ) {
        self.factories
            .write()
            .insert(kind.to_owned(), Box::new(factory));
    }

    /// Instantiates a property of the named kind.
    pub fn instantiate(&self, kind: &str, params: &Params) -> Result<Arc<dyn ActiveProperty>> {
        let factories = self.factories.read();
        let factory = factories
            .get(kind)
            .ok_or_else(|| PlacelessError::UnknownPropertyKind(kind.to_owned()))?;
        factory(params)
    }

    /// Returns `true` if a factory is registered under `kind`.
    pub fn knows(&self, kind: &str) -> bool {
        self.factories.read().contains_key(kind)
    }

    /// Returns the registered kind names, sorted.
    pub fn kinds(&self) -> Vec<String> {
        let mut kinds: Vec<String> = self.factories.read().keys().cloned().collect();
        kinds.sort();
        kinds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Interests;

    struct Noop;
    impl ActiveProperty for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn interests(&self) -> Interests {
            Interests::NONE
        }
    }

    #[test]
    fn instantiate_unknown_kind_fails() {
        let registry = PropertyRegistry::new();
        let err = registry.instantiate("ghost", &Params::new()).err().unwrap();
        assert_eq!(err, PlacelessError::UnknownPropertyKind("ghost".into()));
    }

    #[test]
    fn register_and_instantiate() {
        let registry = PropertyRegistry::new();
        registry.register("noop", |_| Ok(Arc::new(Noop)));
        assert!(registry.knows("noop"));
        assert!(!registry.knows("other"));
        let prop = registry.instantiate("noop", &Params::new()).unwrap();
        assert_eq!(prop.name(), "noop");
    }

    #[test]
    fn factories_can_reject_params() {
        let registry = PropertyRegistry::new();
        registry.register("strict", |params| {
            if params.get_int("level").is_none() {
                return Err(PlacelessError::BadPropertyParams(
                    "`level` is required".into(),
                ));
            }
            Ok(Arc::new(Noop))
        });
        assert!(registry.instantiate("strict", &Params::new()).is_err());
        assert!(registry
            .instantiate("strict", &Params::new().with("level", 3i64))
            .is_ok());
    }

    #[test]
    fn reregistration_replaces() {
        struct Named(&'static str);
        impl ActiveProperty for Named {
            fn name(&self) -> &str {
                self.0
            }
            fn interests(&self) -> Interests {
                Interests::NONE
            }
        }
        let registry = PropertyRegistry::new();
        registry.register("x", |_| Ok(Arc::new(Named("v1"))));
        registry.register("x", |_| Ok(Arc::new(Named("v2"))));
        assert_eq!(
            registry.instantiate("x", &Params::new()).unwrap().name(),
            "v2"
        );
    }

    #[test]
    fn kinds_are_sorted() {
        let registry = PropertyRegistry::new();
        registry.register("zeta", |_| Ok(Arc::new(Noop)));
        registry.register("alpha", |_| Ok(Arc::new(Noop)));
        assert_eq!(registry.kinds(), vec!["alpha", "zeta"]);
    }
}
