//! Input/output streams and the transformer chains active properties build.
//!
//! The Placeless content I/O model follows Java streams: a `getInputStream`
//! call produces a raw stream from the bit-provider, and every active
//! property interested in the operation *wraps* it with a custom stream that
//! transforms the bytes flowing through. Properties on the write path do the
//! same in mirror image, wrapping the sink. Most content transforms
//! (translation, summarization) need the whole document, so this module also
//! provides buffering adapters ([`TransformingInput`],
//! [`TransformingOutput`]) that apply a whole-buffer function at the right
//! moment while still presenting a streaming interface to the layers above.

use crate::error::{PlacelessError, Result};
use bytes::Bytes;

/// A readable stream of document content.
pub trait InputStream: Send {
    /// Reads up to `buf.len()` bytes, returning how many were read; zero
    /// means end of stream.
    fn read(&mut self, buf: &mut [u8]) -> Result<usize>;
}

/// A writable sink for document content.
pub trait OutputStream: Send {
    /// Writes the buffer, returning how many bytes were consumed.
    fn write(&mut self, buf: &[u8]) -> Result<usize>;

    /// Completes the write; transforms that buffer whole documents flush
    /// here, and bit-provider sinks commit here.
    fn close(&mut self) -> Result<()>;
}

/// Reads an input stream to the end.
pub fn read_all(stream: &mut dyn InputStream) -> Result<Bytes> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    Ok(Bytes::from(out))
}

/// Writes an entire buffer to an output stream (without closing it).
pub fn write_all(stream: &mut dyn OutputStream, mut data: &[u8]) -> Result<()> {
    while !data.is_empty() {
        let n = stream.write(data)?;
        if n == 0 {
            return Err(PlacelessError::StreamClosed);
        }
        data = &data[n..];
    }
    Ok(())
}

/// An input stream over an in-memory buffer.
pub struct MemoryInput {
    data: Bytes,
    pos: usize,
}

impl MemoryInput {
    /// Creates a stream over `data`.
    pub fn new(data: Bytes) -> Self {
        Self { data, pos: 0 }
    }
}

impl InputStream for MemoryInput {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let remaining = &self.data[self.pos..];
        let n = remaining.len().min(buf.len());
        buf[..n].copy_from_slice(&remaining[..n]);
        self.pos += n;
        Ok(n)
    }
}

/// Callback invoked with the complete content when the stream closes.
type OnClose = Box<dyn FnOnce(Bytes) -> Result<()> + Send>;

/// An output stream that buffers everything and hands the final bytes to a
/// callback on close.
pub struct CollectOutput {
    buf: Vec<u8>,
    on_close: Option<OnClose>,
}

impl CollectOutput {
    /// Creates a collector whose `on_close` receives the complete content.
    pub fn new(on_close: impl FnOnce(Bytes) -> Result<()> + Send + 'static) -> Self {
        Self {
            buf: Vec::new(),
            on_close: Some(Box::new(on_close)),
        }
    }
}

impl OutputStream for CollectOutput {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        if self.on_close.is_none() {
            return Err(PlacelessError::StreamClosed);
        }
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn close(&mut self) -> Result<()> {
        match self.on_close.take() {
            Some(f) => f(Bytes::from(std::mem::take(&mut self.buf))),
            None => Err(PlacelessError::StreamClosed),
        }
    }
}

/// A whole-content transform function, boxed so chains are heterogeneous.
pub type TransformFn = Box<dyn FnOnce(Bytes) -> Result<Bytes> + Send>;

/// An input stream that buffers its inner stream, applies a whole-content
/// transform once, and serves the result.
///
/// This is the "custom input-stream" of the paper for transforms that need
/// the full document (translation, summarization, spell correction).
pub struct TransformingInput {
    inner: Option<Box<dyn InputStream>>,
    transform: Option<TransformFn>,
    buffered: Option<MemoryInput>,
}

impl TransformingInput {
    /// Wraps `inner` with `transform`.
    pub fn new(inner: Box<dyn InputStream>, transform: TransformFn) -> Self {
        Self {
            inner: Some(inner),
            transform: Some(transform),
            buffered: None,
        }
    }

    fn materialize(&mut self) -> Result<()> {
        if self.buffered.is_none() {
            let mut inner = self.inner.take().expect("materialize runs once");
            let raw = read_all(inner.as_mut())?;
            let transform = self.transform.take().expect("materialize runs once");
            self.buffered = Some(MemoryInput::new(transform(raw)?));
        }
        Ok(())
    }
}

impl InputStream for TransformingInput {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.materialize()?;
        self.buffered
            .as_mut()
            .expect("materialized above")
            .read(buf)
    }
}

/// An output stream that buffers writes, applies a whole-content transform
/// on close, and forwards the result to the inner sink.
pub struct TransformingOutput {
    inner: Option<Box<dyn OutputStream>>,
    transform: Option<TransformFn>,
    buf: Vec<u8>,
}

impl TransformingOutput {
    /// Wraps `inner` with `transform`.
    pub fn new(inner: Box<dyn OutputStream>, transform: TransformFn) -> Self {
        Self {
            inner: Some(inner),
            transform: Some(transform),
            buf: Vec::new(),
        }
    }
}

impl OutputStream for TransformingOutput {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        if self.inner.is_none() {
            return Err(PlacelessError::StreamClosed);
        }
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn close(&mut self) -> Result<()> {
        let mut inner = self.inner.take().ok_or(PlacelessError::StreamClosed)?;
        let transform = self.transform.take().expect("present until close");
        let transformed = transform(Bytes::from(std::mem::take(&mut self.buf)))?;
        write_all(inner.as_mut(), &transformed)?;
        inner.close()
    }
}

/// A streaming (non-buffering) byte-wise input transform, for per-byte
/// transforms like case folding or ROT13 that do not need the whole
/// document.
pub struct MappingInput {
    inner: Box<dyn InputStream>,
    map: Box<dyn FnMut(u8) -> u8 + Send>,
}

impl MappingInput {
    /// Wraps `inner`, mapping every byte through `map`.
    pub fn new(inner: Box<dyn InputStream>, map: impl FnMut(u8) -> u8 + Send + 'static) -> Self {
        Self {
            inner,
            map: Box::new(map),
        }
    }
}

impl InputStream for MappingInput {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.inner.read(buf)?;
        for b in &mut buf[..n] {
            *b = (self.map)(*b);
        }
        Ok(n)
    }
}

/// A streaming byte-wise output transform (mirror of [`MappingInput`]).
pub struct MappingOutput {
    inner: Box<dyn OutputStream>,
    map: Box<dyn FnMut(u8) -> u8 + Send>,
    scratch: Vec<u8>,
}

impl MappingOutput {
    /// Wraps `inner`, mapping every byte through `map`.
    pub fn new(inner: Box<dyn OutputStream>, map: impl FnMut(u8) -> u8 + Send + 'static) -> Self {
        Self {
            inner,
            map: Box::new(map),
            scratch: Vec::new(),
        }
    }
}

impl OutputStream for MappingOutput {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        self.scratch.clear();
        self.scratch.extend(buf.iter().map(|&b| (self.map)(b)));
        write_all(self.inner.as_mut(), &self.scratch)?;
        Ok(buf.len())
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }
}

/// An input stream that observes (but does not change) the bytes flowing
/// through, e.g. for audit-trail properties.
pub struct TapInput {
    inner: Box<dyn InputStream>,
    tap: TapFn,
}

/// Observer invoked with every chunk a [`TapInput`] reads.
type TapFn = Box<dyn FnMut(&[u8]) + Send>;

impl TapInput {
    /// Wraps `inner`; `tap` sees every chunk read.
    pub fn new(inner: Box<dyn InputStream>, tap: impl FnMut(&[u8]) + Send + 'static) -> Self {
        Self {
            inner,
            tap: Box::new(tap),
        }
    }
}

impl InputStream for TapInput {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.inner.read(buf)?;
        (self.tap)(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn mem(data: &[u8]) -> Box<dyn InputStream> {
        Box::new(MemoryInput::new(Bytes::copy_from_slice(data)))
    }

    #[test]
    fn memory_input_round_trip() {
        let mut stream = MemoryInput::new(Bytes::from_static(b"hello world"));
        assert_eq!(read_all(&mut stream).unwrap(), "hello world");
    }

    #[test]
    fn memory_input_partial_reads() {
        let mut stream = MemoryInput::new(Bytes::from_static(b"abcdef"));
        let mut buf = [0u8; 4];
        assert_eq!(stream.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"abcd");
        assert_eq!(stream.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ef");
        assert_eq!(stream.read(&mut buf).unwrap(), 0, "EOF");
    }

    #[test]
    fn collect_output_delivers_on_close() {
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let mut out = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        write_all(&mut out, b"part one, ").unwrap();
        write_all(&mut out, b"part two").unwrap();
        assert!(captured.lock().unwrap().is_none(), "nothing until close");
        out.close().unwrap();
        assert_eq!(
            captured.lock().unwrap().as_ref().unwrap(),
            "part one, part two"
        );
    }

    #[test]
    fn collect_output_rejects_use_after_close() {
        let mut out = CollectOutput::new(|_| Ok(()));
        out.close().unwrap();
        assert_eq!(out.write(b"x").unwrap_err(), PlacelessError::StreamClosed);
        assert_eq!(out.close().unwrap_err(), PlacelessError::StreamClosed);
    }

    #[test]
    fn transforming_input_applies_whole_buffer_transform() {
        let inner = mem(b"hello");
        let mut t =
            TransformingInput::new(inner, Box::new(|b| Ok(Bytes::from(b.to_ascii_uppercase()))));
        assert_eq!(read_all(&mut t).unwrap(), "HELLO");
    }

    #[test]
    fn transforming_input_is_lazy_until_first_read() {
        // The transform must not run during construction: build with a
        // transform that would fail, never read, and observe no panic.
        let inner = mem(b"data");
        let _t = TransformingInput::new(inner, Box::new(|_| Err(PlacelessError::StreamClosed)));
    }

    #[test]
    fn transforming_input_propagates_transform_errors() {
        let inner = mem(b"data");
        let mut t = TransformingInput::new(
            inner,
            Box::new(|_| {
                Err(PlacelessError::Property {
                    name: "boom".into(),
                    reason: "failed".into(),
                })
            }),
        );
        let mut buf = [0u8; 8];
        assert!(t.read(&mut buf).is_err());
    }

    #[test]
    fn transforming_output_applies_on_close() {
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let collect = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        let mut out = TransformingOutput::new(
            Box::new(collect),
            Box::new(|b| Ok(Bytes::from(b.to_ascii_uppercase()))),
        );
        write_all(&mut out, b"save me").unwrap();
        out.close().unwrap();
        assert_eq!(captured.lock().unwrap().as_ref().unwrap(), "SAVE ME");
    }

    #[test]
    fn chained_transforms_compose_outside_in() {
        // Outer transform runs on the result of the inner transform on the
        // read path: provider -> inner wrap -> outer wrap -> application.
        let inner = TransformingInput::new(
            mem(b"ab"),
            Box::new(|b| {
                let mut v = b.to_vec();
                v.push(b'1');
                Ok(Bytes::from(v))
            }),
        );
        let mut outer = TransformingInput::new(
            Box::new(inner),
            Box::new(|b| {
                let mut v = b.to_vec();
                v.push(b'2');
                Ok(Bytes::from(v))
            }),
        );
        assert_eq!(read_all(&mut outer).unwrap(), "ab12");
    }

    #[test]
    fn chained_output_transforms_compose_in_write_order() {
        // App writes into the outermost wrapper; its transform runs first,
        // then the next one, then the sink — the mirror of the read path.
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let collect = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        let near_sink = TransformingOutput::new(
            Box::new(collect),
            Box::new(|b| {
                let mut v = b.to_vec();
                v.push(b'B');
                Ok(Bytes::from(v))
            }),
        );
        let mut app_side = TransformingOutput::new(
            Box::new(near_sink),
            Box::new(|b| {
                let mut v = b.to_vec();
                v.push(b'A');
                Ok(Bytes::from(v))
            }),
        );
        write_all(&mut app_side, b"x").unwrap();
        app_side.close().unwrap();
        assert_eq!(captured.lock().unwrap().as_ref().unwrap(), "xAB");
    }

    #[test]
    fn mapping_input_streams_bytewise() {
        let mut m = MappingInput::new(mem(b"abc"), |b| b.to_ascii_uppercase());
        let mut buf = [0u8; 2];
        assert_eq!(m.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf, b"AB");
        assert_eq!(m.read(&mut buf).unwrap(), 1);
        assert_eq!(&buf[..1], b"C");
    }

    #[test]
    fn mapping_output_streams_bytewise() {
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let collect = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        let mut m = MappingOutput::new(Box::new(collect), |b| b.wrapping_add(1));
        write_all(&mut m, b"HAL").unwrap();
        m.close().unwrap();
        assert_eq!(captured.lock().unwrap().as_ref().unwrap(), "IBM");
    }

    #[test]
    fn tap_input_observes_without_modifying() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let tap_sink = seen.clone();
        let mut t = TapInput::new(mem(b"watched"), move |chunk| {
            tap_sink.lock().unwrap().extend_from_slice(chunk);
        });
        assert_eq!(read_all(&mut t).unwrap(), "watched");
        assert_eq!(seen.lock().unwrap().as_slice(), b"watched");
    }

    #[test]
    fn write_all_loops_over_short_writes() {
        // An output stream that accepts one byte at a time.
        struct OneByte(Vec<u8>);
        impl OutputStream for OneByte {
            fn write(&mut self, buf: &[u8]) -> Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn close(&mut self) -> Result<()> {
                Ok(())
            }
        }
        let mut s = OneByte(Vec::new());
        write_all(&mut s, b"slow").unwrap();
        assert_eq!(s.0, b"slow");
    }
}
