//! Input/output streams and the transformer chains active properties build.
//!
//! The Placeless content I/O model follows Java streams: a `getInputStream`
//! call produces a raw stream from the bit-provider, and every active
//! property interested in the operation *wraps* it with a custom stream that
//! transforms the bytes flowing through. Properties on the write path do the
//! same in mirror image, wrapping the sink. Most content transforms
//! (translation, summarization) need the whole document, so this module also
//! provides buffering adapters ([`TransformingInput`],
//! [`TransformingOutput`]) that apply a whole-buffer function at the right
//! moment while still presenting a streaming interface to the layers above.
//!
//! ## Chunked fast path
//!
//! Beyond the byte-oriented `read`/`write` contract, streams expose a
//! chunked fast path: [`InputStream::read_chunk`] yields refcounted
//! [`Bytes`] slices and [`OutputStream::write_bytes`] accepts them, so
//! in-memory sources ([`MemoryInput`]), observers ([`TapInput`]) and
//! whole-buffer sinks ([`CollectOutput`]) hand content through without
//! copying. [`InputStream::size_hint`] lets collectors preallocate exactly
//! once. [`read_all`] returns a source's single chunk as-is — a read
//! through a pass-through chain is zero-copy end to end — and
//! [`read_all_digest`] folds an incremental MD5 over the same single pass.

use crate::digest::{Md5, Signature};
use crate::error::{PlacelessError, Result};
use bytes::Bytes;

/// Chunk size of the copying [`InputStream::read_chunk`] fallback (and of
/// the byte-oriented [`read_all`] of old). Sources that can hand out
/// refcounted slices ignore it; the bound matters only for streams that
/// truly produce bytes incrementally.
pub const CHUNK_SIZE: usize = 4096;

/// A readable stream of document content.
pub trait InputStream: Send {
    /// Reads up to `buf.len()` bytes, returning how many were read; zero
    /// means end of stream.
    fn read(&mut self, buf: &mut [u8]) -> Result<usize>;

    /// Returns the number of bytes remaining on the stream, when cheaply
    /// known. Collectors use it to allocate once; `None` (the default)
    /// means unknown, not zero.
    fn size_hint(&self) -> Option<u64> {
        None
    }

    /// Reads the next chunk of the stream, or `None` at end of stream.
    ///
    /// The default bridges [`InputStream::read`] through a [`CHUNK_SIZE`]
    /// stack buffer (one copy). In-memory sources override it to hand out
    /// refcounted slices of their backing allocation — the zero-copy fast
    /// path the streaming stage executor rides.
    fn read_chunk(&mut self) -> Result<Option<Bytes>> {
        let mut buf = [0u8; CHUNK_SIZE];
        let n = self.read(&mut buf)?;
        Ok(if n == 0 {
            None
        } else {
            Some(Bytes::copy_from_slice(&buf[..n]))
        })
    }
}

/// A writable sink for document content.
pub trait OutputStream: Send {
    /// Writes the buffer, returning how many bytes were consumed.
    fn write(&mut self, buf: &[u8]) -> Result<usize>;

    /// Completes the write; transforms that buffer whole documents flush
    /// here, and bit-provider sinks commit here.
    fn close(&mut self) -> Result<()>;

    /// Writes a whole refcounted chunk. Semantically identical to
    /// `write`-ing the full slice; buffering sinks override it to adopt
    /// the chunk without copying when it is the only content they see.
    fn write_bytes(&mut self, chunk: Bytes) -> Result<()> {
        let mut data: &[u8] = &chunk;
        while !data.is_empty() {
            let n = self.write(data)?;
            if n == 0 {
                return Err(PlacelessError::StreamClosed);
            }
            data = &data[n..];
        }
        Ok(())
    }
}

/// Reads an input stream to the end.
///
/// Rides the chunk fast path: a source that yields exactly one chunk (any
/// in-memory buffer) is returned as that refcounted slice with no copy and
/// no allocation; multi-chunk streams collect into a single buffer sized
/// from [`InputStream::size_hint`].
pub fn read_all(stream: &mut dyn InputStream) -> Result<Bytes> {
    let first = match stream.read_chunk()? {
        None => return Ok(Bytes::new()),
        Some(c) => c,
    };
    let second = match stream.read_chunk()? {
        None => return Ok(first),
        Some(c) => c,
    };
    let hint = stream.size_hint().unwrap_or(0) as usize;
    let mut out = Vec::with_capacity(first.len() + second.len() + hint);
    out.extend_from_slice(&first);
    out.extend_from_slice(&second);
    while let Some(chunk) = stream.read_chunk()? {
        out.extend_from_slice(&chunk);
    }
    Ok(Bytes::from(out))
}

/// Reads an input stream to the end while folding an incremental MD5 over
/// the same pass — one traversal produces both the bytes and their content
/// signature, with the same zero-copy single-chunk fast path as
/// [`read_all`].
pub fn read_all_digest(stream: &mut dyn InputStream) -> Result<(Bytes, Signature)> {
    let mut ctx = Md5::new();
    let first = match stream.read_chunk()? {
        None => return Ok((Bytes::new(), ctx.finalize())),
        Some(c) => {
            ctx.update(&c);
            c
        }
    };
    let second = match stream.read_chunk()? {
        None => return Ok((first, ctx.finalize())),
        Some(c) => {
            ctx.update(&c);
            c
        }
    };
    let hint = stream.size_hint().unwrap_or(0) as usize;
    let mut out = Vec::with_capacity(first.len() + second.len() + hint);
    out.extend_from_slice(&first);
    out.extend_from_slice(&second);
    while let Some(chunk) = stream.read_chunk()? {
        ctx.update(&chunk);
        out.extend_from_slice(&chunk);
    }
    Ok((Bytes::from(out), ctx.finalize()))
}

/// Writes an entire buffer to an output stream (without closing it).
pub fn write_all(stream: &mut dyn OutputStream, mut data: &[u8]) -> Result<()> {
    while !data.is_empty() {
        let n = stream.write(data)?;
        if n == 0 {
            return Err(PlacelessError::StreamClosed);
        }
        data = &data[n..];
    }
    Ok(())
}

/// Writes a refcounted buffer through the zero-copy chunk path (without
/// closing the stream). Buffering sinks adopt the allocation instead of
/// copying it.
pub fn write_all_bytes(stream: &mut dyn OutputStream, data: Bytes) -> Result<()> {
    stream.write_bytes(data)
}

/// An input stream over an in-memory buffer.
pub struct MemoryInput {
    data: Bytes,
    pos: usize,
}

impl MemoryInput {
    /// Creates a stream over `data`.
    pub fn new(data: Bytes) -> Self {
        Self { data, pos: 0 }
    }
}

impl InputStream for MemoryInput {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let remaining = &self.data[self.pos..];
        let n = remaining.len().min(buf.len());
        buf[..n].copy_from_slice(&remaining[..n]);
        self.pos += n;
        Ok(n)
    }

    fn size_hint(&self) -> Option<u64> {
        Some((self.data.len() - self.pos) as u64)
    }

    fn read_chunk(&mut self) -> Result<Option<Bytes>> {
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        // The whole remainder as one refcounted slice: no copy, and if the
        // stream is unread this is the source buffer itself.
        let chunk = self.data.slice(self.pos..);
        self.pos = self.data.len();
        Ok(Some(chunk))
    }
}

/// Callback invoked with the complete content when the stream closes.
type OnClose = Box<dyn FnOnce(Bytes) -> Result<()> + Send>;

/// An output stream that buffers everything and hands the final bytes to a
/// callback on close.
///
/// A single [`OutputStream::write_bytes`] chunk is adopted as-is (the
/// callback receives the writer's own refcounted buffer); byte-oriented
/// writes or multiple chunks fall back to one collected allocation.
pub struct CollectOutput {
    buf: Vec<u8>,
    fast: Option<Bytes>,
    on_close: Option<OnClose>,
}

impl CollectOutput {
    /// Creates a collector whose `on_close` receives the complete content.
    pub fn new(on_close: impl FnOnce(Bytes) -> Result<()> + Send + 'static) -> Self {
        Self {
            buf: Vec::new(),
            fast: None,
            on_close: Some(Box::new(on_close)),
        }
    }

    /// Like [`CollectOutput::new`], with the buffer preallocated for
    /// `size_hint` bytes so known-length writers collect in one allocation.
    pub fn with_size_hint(
        size_hint: usize,
        on_close: impl FnOnce(Bytes) -> Result<()> + Send + 'static,
    ) -> Self {
        Self {
            buf: Vec::with_capacity(size_hint),
            fast: None,
            on_close: Some(Box::new(on_close)),
        }
    }

    /// Spills the fast-path chunk into the byte buffer when mixed writes
    /// force a real collection.
    fn spill(&mut self) {
        if let Some(chunk) = self.fast.take() {
            self.buf.extend_from_slice(&chunk);
        }
    }
}

impl OutputStream for CollectOutput {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        if self.on_close.is_none() {
            return Err(PlacelessError::StreamClosed);
        }
        self.spill();
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn write_bytes(&mut self, chunk: Bytes) -> Result<()> {
        if self.on_close.is_none() {
            return Err(PlacelessError::StreamClosed);
        }
        if self.buf.is_empty() && self.fast.is_none() {
            self.fast = Some(chunk);
        } else {
            self.spill();
            self.buf.extend_from_slice(&chunk);
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        match self.on_close.take() {
            Some(f) => {
                let content = match self.fast.take() {
                    Some(chunk) => chunk,
                    None => Bytes::from(std::mem::take(&mut self.buf)),
                };
                f(content)
            }
            None => Err(PlacelessError::StreamClosed),
        }
    }
}

/// A whole-content transform function, boxed so chains are heterogeneous.
pub type TransformFn = Box<dyn FnOnce(Bytes) -> Result<Bytes> + Send>;

/// An input stream that buffers its inner stream, applies a whole-content
/// transform once, and serves the result.
///
/// This is the "custom input-stream" of the paper for transforms that need
/// the full document (translation, summarization, spell correction).
pub struct TransformingInput {
    inner: Option<Box<dyn InputStream>>,
    transform: Option<TransformFn>,
    buffered: Option<MemoryInput>,
}

impl TransformingInput {
    /// Wraps `inner` with `transform`.
    pub fn new(inner: Box<dyn InputStream>, transform: TransformFn) -> Self {
        Self {
            inner: Some(inner),
            transform: Some(transform),
            buffered: None,
        }
    }

    fn materialize(&mut self) -> Result<()> {
        if self.buffered.is_none() {
            let mut inner = self.inner.take().expect("materialize runs once");
            // `read_all` honours the inner stream's size hint, so the
            // buffering this adapter cannot avoid is a single allocation —
            // or none, when the inner stream hands over one slice.
            let raw = read_all(inner.as_mut())?;
            let transform = self.transform.take().expect("materialize runs once");
            self.buffered = Some(MemoryInput::new(transform(raw)?));
        }
        Ok(())
    }
}

impl InputStream for TransformingInput {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.materialize()?;
        self.buffered
            .as_mut()
            .expect("materialized above")
            .read(buf)
    }

    fn size_hint(&self) -> Option<u64> {
        // Known only once materialized; must stay lazy before that.
        self.buffered.as_ref().and_then(|b| b.size_hint())
    }

    fn read_chunk(&mut self) -> Result<Option<Bytes>> {
        self.materialize()?;
        self.buffered
            .as_mut()
            .expect("materialized above")
            .read_chunk()
    }
}

/// An output stream that buffers writes, applies a whole-content transform
/// on close, and forwards the result to the inner sink.
pub struct TransformingOutput {
    inner: Option<Box<dyn OutputStream>>,
    transform: Option<TransformFn>,
    buf: Vec<u8>,
    fast: Option<Bytes>,
}

impl TransformingOutput {
    /// Wraps `inner` with `transform`.
    pub fn new(inner: Box<dyn OutputStream>, transform: TransformFn) -> Self {
        Self {
            inner: Some(inner),
            transform: Some(transform),
            buf: Vec::new(),
            fast: None,
        }
    }

    fn spill(&mut self) {
        if let Some(chunk) = self.fast.take() {
            self.buf.extend_from_slice(&chunk);
        }
    }
}

impl OutputStream for TransformingOutput {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        if self.inner.is_none() {
            return Err(PlacelessError::StreamClosed);
        }
        self.spill();
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn write_bytes(&mut self, chunk: Bytes) -> Result<()> {
        if self.inner.is_none() {
            return Err(PlacelessError::StreamClosed);
        }
        if self.buf.is_empty() && self.fast.is_none() {
            self.fast = Some(chunk);
        } else {
            self.spill();
            self.buf.extend_from_slice(&chunk);
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        let mut inner = self.inner.take().ok_or(PlacelessError::StreamClosed)?;
        let transform = self.transform.take().expect("present until close");
        let payload = match self.fast.take() {
            Some(chunk) => chunk,
            None => Bytes::from(std::mem::take(&mut self.buf)),
        };
        let transformed = transform(payload)?;
        inner.write_bytes(transformed)?;
        inner.close()
    }
}

/// A streaming (non-buffering) byte-wise input transform, for per-byte
/// transforms like case folding or ROT13 that do not need the whole
/// document.
pub struct MappingInput {
    inner: Box<dyn InputStream>,
    map: Box<dyn FnMut(u8) -> u8 + Send>,
}

impl MappingInput {
    /// Wraps `inner`, mapping every byte through `map`.
    pub fn new(inner: Box<dyn InputStream>, map: impl FnMut(u8) -> u8 + Send + 'static) -> Self {
        Self {
            inner,
            map: Box::new(map),
        }
    }
}

impl InputStream for MappingInput {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.inner.read(buf)?;
        for b in &mut buf[..n] {
            *b = (self.map)(*b);
        }
        Ok(n)
    }

    fn size_hint(&self) -> Option<u64> {
        // Byte-wise maps are length-preserving.
        self.inner.size_hint()
    }

    fn read_chunk(&mut self) -> Result<Option<Bytes>> {
        // The map rewrites every byte, so one copy per chunk is inherent;
        // chunk granularity still follows the inner stream.
        Ok(match self.inner.read_chunk()? {
            None => None,
            Some(chunk) => {
                let mut mapped = chunk.to_vec();
                for b in &mut mapped {
                    *b = (self.map)(*b);
                }
                Some(Bytes::from(mapped))
            }
        })
    }
}

/// A streaming byte-wise output transform (mirror of [`MappingInput`]).
pub struct MappingOutput {
    inner: Box<dyn OutputStream>,
    map: Box<dyn FnMut(u8) -> u8 + Send>,
    scratch: Vec<u8>,
}

impl MappingOutput {
    /// Wraps `inner`, mapping every byte through `map`.
    pub fn new(inner: Box<dyn OutputStream>, map: impl FnMut(u8) -> u8 + Send + 'static) -> Self {
        Self {
            inner,
            map: Box::new(map),
            scratch: Vec::new(),
        }
    }
}

impl OutputStream for MappingOutput {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        self.scratch.clear();
        self.scratch.extend(buf.iter().map(|&b| (self.map)(b)));
        write_all(self.inner.as_mut(), &self.scratch)?;
        Ok(buf.len())
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }
}

/// An input stream that observes (but does not change) the bytes flowing
/// through, e.g. for audit-trail properties.
pub struct TapInput {
    inner: Box<dyn InputStream>,
    tap: TapFn,
}

/// Observer invoked with every chunk a [`TapInput`] reads.
type TapFn = Box<dyn FnMut(&[u8]) + Send>;

impl TapInput {
    /// Wraps `inner`; `tap` sees every chunk read.
    pub fn new(inner: Box<dyn InputStream>, tap: impl FnMut(&[u8]) + Send + 'static) -> Self {
        Self {
            inner,
            tap: Box::new(tap),
        }
    }
}

impl InputStream for TapInput {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.inner.read(buf)?;
        (self.tap)(&buf[..n]);
        Ok(n)
    }

    fn size_hint(&self) -> Option<u64> {
        self.inner.size_hint()
    }

    fn read_chunk(&mut self) -> Result<Option<Bytes>> {
        // Observe and forward the inner chunk unchanged — the refcounted
        // slice passes through without a copy.
        Ok(match self.inner.read_chunk()? {
            None => None,
            Some(chunk) => {
                (self.tap)(&chunk);
                Some(chunk)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::md5;
    use std::sync::{Arc, Mutex};

    fn mem(data: &[u8]) -> Box<dyn InputStream> {
        Box::new(MemoryInput::new(Bytes::copy_from_slice(data)))
    }

    #[test]
    fn memory_input_round_trip() {
        let mut stream = MemoryInput::new(Bytes::from_static(b"hello world"));
        assert_eq!(read_all(&mut stream).unwrap(), "hello world");
    }

    #[test]
    fn memory_input_partial_reads() {
        let mut stream = MemoryInput::new(Bytes::from_static(b"abcdef"));
        let mut buf = [0u8; 4];
        assert_eq!(stream.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"abcd");
        assert_eq!(stream.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ef");
        assert_eq!(stream.read(&mut buf).unwrap(), 0, "EOF");
    }

    #[test]
    fn memory_input_chunk_is_zero_copy() {
        let source = Bytes::from_static(b"refcounted");
        let mut stream = MemoryInput::new(source.clone());
        assert_eq!(stream.size_hint(), Some(10));
        let chunk = stream.read_chunk().unwrap().unwrap();
        assert!(
            std::ptr::eq(chunk.as_ptr(), source.as_ptr()),
            "chunk must alias the source allocation"
        );
        assert_eq!(stream.size_hint(), Some(0));
        assert!(stream.read_chunk().unwrap().is_none(), "EOF");
    }

    #[test]
    fn memory_input_chunk_after_partial_read_slices_the_remainder() {
        let source = Bytes::from_static(b"abcdef");
        let mut stream = MemoryInput::new(source.clone());
        let mut buf = [0u8; 2];
        stream.read(&mut buf).unwrap();
        let chunk = stream.read_chunk().unwrap().unwrap();
        assert_eq!(chunk, "cdef");
        assert!(std::ptr::eq(chunk.as_ptr(), source[2..].as_ptr()));
    }

    #[test]
    fn read_all_returns_single_chunk_without_copying() {
        let source = Bytes::from_static(b"zero copy end to end");
        let mut stream = MemoryInput::new(source.clone());
        let out = read_all(&mut stream).unwrap();
        assert_eq!(out, source);
        assert!(std::ptr::eq(out.as_ptr(), source.as_ptr()));
    }

    #[test]
    fn default_read_chunk_bridges_byte_readers() {
        // An input stream implementing only `read`, one byte at a time.
        struct OneByte(Vec<u8>);
        impl InputStream for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
                if self.0.is_empty() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0.remove(0);
                Ok(1)
            }
        }
        let mut s = OneByte(b"chunked".to_vec());
        assert_eq!(s.size_hint(), None, "default hint is unknown");
        assert_eq!(read_all(&mut s).unwrap(), "chunked");
    }

    #[test]
    fn read_all_digest_matches_separate_passes() {
        for body in [&b""[..], b"short", &[0xa5u8; 10_000]] {
            let (bytes, sig) = read_all_digest(mem(body).as_mut()).unwrap();
            assert_eq!(bytes, *body);
            assert_eq!(sig, md5(body));
        }
    }

    #[test]
    fn collect_output_delivers_on_close() {
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let mut out = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        write_all(&mut out, b"part one, ").unwrap();
        write_all(&mut out, b"part two").unwrap();
        assert!(captured.lock().unwrap().is_none(), "nothing until close");
        out.close().unwrap();
        assert_eq!(
            captured.lock().unwrap().as_ref().unwrap(),
            "part one, part two"
        );
    }

    #[test]
    fn collect_output_rejects_use_after_close() {
        let mut out = CollectOutput::new(|_| Ok(()));
        out.close().unwrap();
        assert_eq!(out.write(b"x").unwrap_err(), PlacelessError::StreamClosed);
        assert_eq!(
            out.write_bytes(Bytes::from_static(b"x")).unwrap_err(),
            PlacelessError::StreamClosed
        );
        assert_eq!(out.close().unwrap_err(), PlacelessError::StreamClosed);
    }

    #[test]
    fn collect_output_adopts_a_single_chunk_without_copying() {
        let source = Bytes::from_static(b"adopted wholesale");
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let mut out = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        out.write_bytes(source.clone()).unwrap();
        out.close().unwrap();
        let got = captured.lock().unwrap().take().unwrap();
        assert_eq!(got, source);
        assert!(
            std::ptr::eq(got.as_ptr(), source.as_ptr()),
            "single chunk must pass through refcounted"
        );
    }

    #[test]
    fn collect_output_mixed_writes_still_collect_in_order() {
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let mut out = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        out.write_bytes(Bytes::from_static(b"one ")).unwrap();
        write_all(&mut out, b"two ").unwrap();
        out.write_bytes(Bytes::from_static(b"three")).unwrap();
        out.close().unwrap();
        assert_eq!(captured.lock().unwrap().as_ref().unwrap(), "one two three");
    }

    #[test]
    fn transforming_input_applies_whole_buffer_transform() {
        let inner = mem(b"hello");
        let mut t =
            TransformingInput::new(inner, Box::new(|b| Ok(Bytes::from(b.to_ascii_uppercase()))));
        assert_eq!(read_all(&mut t).unwrap(), "HELLO");
    }

    #[test]
    fn transforming_input_is_lazy_until_first_read() {
        // The transform must not run during construction or on size_hint:
        // build with a transform that would fail, probe the hint, never
        // read, and observe no panic.
        let inner = mem(b"data");
        let t = TransformingInput::new(inner, Box::new(|_| Err(PlacelessError::StreamClosed)));
        assert_eq!(t.size_hint(), None, "hint unknown before materializing");
    }

    #[test]
    fn transforming_input_identity_passes_the_slice_through() {
        let source = Bytes::from_static(b"identity transform");
        let inner = Box::new(MemoryInput::new(source.clone()));
        let mut t = TransformingInput::new(inner, Box::new(Ok));
        let out = read_all(&mut t).unwrap();
        assert_eq!(out, source);
        assert!(
            std::ptr::eq(out.as_ptr(), source.as_ptr()),
            "identity chain must not materialize a copy"
        );
    }

    #[test]
    fn transforming_input_propagates_transform_errors() {
        let inner = mem(b"data");
        let mut t = TransformingInput::new(
            inner,
            Box::new(|_| {
                Err(PlacelessError::Property {
                    name: "boom".into(),
                    reason: "failed".into(),
                })
            }),
        );
        let mut buf = [0u8; 8];
        assert!(t.read(&mut buf).is_err());
    }

    #[test]
    fn transforming_output_applies_on_close() {
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let collect = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        let mut out = TransformingOutput::new(
            Box::new(collect),
            Box::new(|b| Ok(Bytes::from(b.to_ascii_uppercase()))),
        );
        write_all(&mut out, b"save me").unwrap();
        out.close().unwrap();
        assert_eq!(captured.lock().unwrap().as_ref().unwrap(), "SAVE ME");
    }

    #[test]
    fn transforming_output_identity_chunk_reaches_the_sink_unscathed() {
        let source = Bytes::from_static(b"written once");
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let collect = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        let mut out = TransformingOutput::new(Box::new(collect), Box::new(Ok));
        write_all_bytes(&mut out, source.clone()).unwrap();
        out.close().unwrap();
        let got = captured.lock().unwrap().take().unwrap();
        assert_eq!(got, source);
        assert!(
            std::ptr::eq(got.as_ptr(), source.as_ptr()),
            "identity write chain must forward the caller's buffer"
        );
    }

    #[test]
    fn chained_transforms_compose_outside_in() {
        // Outer transform runs on the result of the inner transform on the
        // read path: provider -> inner wrap -> outer wrap -> application.
        let inner = TransformingInput::new(
            mem(b"ab"),
            Box::new(|b| {
                let mut v = b.to_vec();
                v.push(b'1');
                Ok(Bytes::from(v))
            }),
        );
        let mut outer = TransformingInput::new(
            Box::new(inner),
            Box::new(|b| {
                let mut v = b.to_vec();
                v.push(b'2');
                Ok(Bytes::from(v))
            }),
        );
        assert_eq!(read_all(&mut outer).unwrap(), "ab12");
    }

    #[test]
    fn chained_output_transforms_compose_in_write_order() {
        // App writes into the outermost wrapper; its transform runs first,
        // then the next one, then the sink — the mirror of the read path.
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let collect = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        let near_sink = TransformingOutput::new(
            Box::new(collect),
            Box::new(|b| {
                let mut v = b.to_vec();
                v.push(b'B');
                Ok(Bytes::from(v))
            }),
        );
        let mut app_side = TransformingOutput::new(
            Box::new(near_sink),
            Box::new(|b| {
                let mut v = b.to_vec();
                v.push(b'A');
                Ok(Bytes::from(v))
            }),
        );
        write_all(&mut app_side, b"x").unwrap();
        app_side.close().unwrap();
        assert_eq!(captured.lock().unwrap().as_ref().unwrap(), "xAB");
    }

    #[test]
    fn mapping_input_streams_bytewise() {
        let mut m = MappingInput::new(mem(b"abc"), |b| b.to_ascii_uppercase());
        let mut buf = [0u8; 2];
        assert_eq!(m.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf, b"AB");
        assert_eq!(m.read(&mut buf).unwrap(), 1);
        assert_eq!(&buf[..1], b"C");
    }

    #[test]
    fn mapping_input_chunk_path_maps_and_keeps_the_hint() {
        let mut m = MappingInput::new(mem(b"abc"), |b| b.to_ascii_uppercase());
        assert_eq!(m.size_hint(), Some(3));
        assert_eq!(m.read_chunk().unwrap().unwrap(), "ABC");
        assert!(m.read_chunk().unwrap().is_none());
    }

    #[test]
    fn mapping_output_streams_bytewise() {
        let captured = Arc::new(Mutex::new(None));
        let sink = captured.clone();
        let collect = CollectOutput::new(move |bytes| {
            *sink.lock().unwrap() = Some(bytes);
            Ok(())
        });
        let mut m = MappingOutput::new(Box::new(collect), |b| b.wrapping_add(1));
        write_all(&mut m, b"HAL").unwrap();
        m.close().unwrap();
        assert_eq!(captured.lock().unwrap().as_ref().unwrap(), "IBM");
    }

    #[test]
    fn tap_input_observes_without_modifying() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let tap_sink = seen.clone();
        let mut t = TapInput::new(mem(b"watched"), move |chunk| {
            tap_sink.lock().unwrap().extend_from_slice(chunk);
        });
        assert_eq!(read_all(&mut t).unwrap(), "watched");
        assert_eq!(seen.lock().unwrap().as_slice(), b"watched");
    }

    #[test]
    fn tap_input_forwards_chunks_zero_copy() {
        let source = Bytes::from_static(b"observed");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let tap_sink = seen.clone();
        let mut t = TapInput::new(Box::new(MemoryInput::new(source.clone())), move |chunk| {
            tap_sink.lock().unwrap().extend_from_slice(chunk)
        });
        assert_eq!(t.size_hint(), Some(8));
        let chunk = t.read_chunk().unwrap().unwrap();
        assert!(std::ptr::eq(chunk.as_ptr(), source.as_ptr()));
        assert_eq!(seen.lock().unwrap().as_slice(), b"observed");
    }

    #[test]
    fn write_all_loops_over_short_writes() {
        // An output stream that accepts one byte at a time.
        struct OneByte(Vec<u8>);
        impl OutputStream for OneByte {
            fn write(&mut self, buf: &[u8]) -> Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn close(&mut self) -> Result<()> {
                Ok(())
            }
        }
        let mut s = OneByte(Vec::new());
        write_all(&mut s, b"slow").unwrap();
        assert_eq!(s.0, b"slow");
    }
}
