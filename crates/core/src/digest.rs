//! MD5 content signatures (RFC 1321), implemented in-tree.
//!
//! The paper proposes sharing cached entries between users by mapping
//! `(document, user)` pairs to a *content signature* ("e.g., MD5 hash") and
//! signatures to the actual bytes. The staged transform pipeline
//! ([`crate::plan`]) additionally derives per-stage signatures from these
//! digests, which is why the module lives in `core` rather than the cache
//! crate (which re-exports it). MD5 is long broken for security but remains
//! exactly what the paper specifies for content equality, and an in-tree
//! implementation keeps the workspace free of crypto dependencies.

/// A 128-bit MD5 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(pub [u8; 16]);

/// Lowercase hex digits, indexed by nibble.
const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

impl Signature {
    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut out = [0u8; 32];
        for (i, b) in self.0.iter().enumerate() {
            out[i * 2] = HEX_DIGITS[(b >> 4) as usize];
            out[i * 2 + 1] = HEX_DIGITS[(b & 0x0f) as usize];
        }
        String::from_utf8(out.to_vec()).expect("hex digits are ASCII")
    }
}

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Computes the MD5 digest of `data` in one shot.
pub fn md5(data: &[u8]) -> Signature {
    let mut ctx = Md5::new();
    ctx.update(data);
    ctx.finalize()
}

/// Incremental MD5 context.
///
/// # Examples
///
/// ```
/// use placeless_core::digest::{md5, Md5};
///
/// let mut ctx = Md5::new();
/// ctx.update(b"hello ");
/// ctx.update(b"world");
/// assert_eq!(ctx.finalize(), md5(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Binary integer parts of `abs(sin(i+1)) * 2^32`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a fresh context.
    pub fn new() -> Self {
        Self {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes the digest.
    pub fn finalize(mut self) -> Signature {
        let bit_len = self.length_bytes.wrapping_mul(8);
        // Padding: 0x80 then zeros until 8 bytes remain in the block.
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length is appended directly (bypassing the length counter).
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.compress(&block.clone());
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Signature(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(md5(input).to_hex(), expected, "input: {input:?}");
        }
    }

    #[test]
    fn incremental_matches_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1_000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = md5(&data);
        for chunk in [1usize, 3, 63, 64, 65, 100, 999] {
            let mut ctx = Md5::new();
            for piece in data.chunks(chunk) {
                ctx.update(piece);
            }
            assert_eq!(ctx.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(md5(b"abc").to_string(), "900150983cd24fb0d6963f7d28e17f72");
    }

    #[test]
    fn different_content_different_signature() {
        assert_ne!(md5(b"hello"), md5(b"hello!"));
        assert_eq!(md5(b"same"), md5(b"same"));
    }

    #[test]
    fn block_boundary_lengths() {
        // 55, 56, 57, 63, 64, 65 bytes exercise the padding edge cases.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![b'x'; len];
            let mut ctx = Md5::new();
            ctx.update(&data);
            assert_eq!(ctx.finalize(), md5(&data), "len {len}");
        }
    }
}
