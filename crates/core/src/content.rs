//! Document content and property values.
//!
//! Content is an immutable byte buffer ([`bytes::Bytes`]) so cached entries,
//! repositories, and in-flight streams can share the same allocation.
//! [`PropertyValue`] is the small dynamic value type carried by static
//! properties and by active-property parameters (the registry instantiates
//! active properties from name + parameter map, which is how attach-by-name
//! works without recompiling).

use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// Immutable document content.
pub type Content = Bytes;

/// A dynamically typed value attached to a document as a static property or
/// passed as a parameter to an active-property factory.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyValue {
    /// A UTF-8 string, e.g. `"1999 workshop submission"`.
    Str(String),
    /// A signed integer, e.g. a deadline expressed as a day number.
    Int(i64),
    /// A boolean flag.
    Bool(bool),
    /// A floating point value, e.g. a QoS latency bound in milliseconds.
    Float(f64),
    /// Raw bytes, e.g. a saved version snapshot link.
    Blob(Bytes),
}

impl PropertyValue {
    /// Returns the string payload, if this is a [`PropertyValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropertyValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an [`PropertyValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropertyValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`PropertyValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            PropertyValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the float payload, accepting ints as floats too.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            PropertyValue::Float(x) => Some(*x),
            PropertyValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

impl From<&str> for PropertyValue {
    fn from(s: &str) -> Self {
        PropertyValue::Str(s.to_owned())
    }
}

impl From<String> for PropertyValue {
    fn from(s: String) -> Self {
        PropertyValue::Str(s)
    }
}

impl From<i64> for PropertyValue {
    fn from(i: i64) -> Self {
        PropertyValue::Int(i)
    }
}

impl From<bool> for PropertyValue {
    fn from(b: bool) -> Self {
        PropertyValue::Bool(b)
    }
}

impl From<f64> for PropertyValue {
    fn from(x: f64) -> Self {
        PropertyValue::Float(x)
    }
}

impl fmt::Display for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyValue::Str(s) => write!(f, "{s}"),
            PropertyValue::Int(i) => write!(f, "{i}"),
            PropertyValue::Bool(b) => write!(f, "{b}"),
            PropertyValue::Float(x) => write!(f, "{x}"),
            PropertyValue::Blob(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

/// An ordered name → value map used as active-property parameters.
///
/// # Examples
///
/// ```
/// use placeless_core::content::Params;
///
/// let params = Params::new()
///     .with("language", "fr")
///     .with("aggressive", true);
/// assert_eq!(params.get_str("language"), Some("fr"));
/// assert_eq!(params.get_bool("aggressive"), Some(true));
/// assert_eq!(params.get_int("missing"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    entries: BTreeMap<String, PropertyValue>,
}

impl Params {
    /// Creates an empty parameter map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a parameter, builder style.
    pub fn with(mut self, name: &str, value: impl Into<PropertyValue>) -> Self {
        self.entries.insert(name.to_owned(), value.into());
        self
    }

    /// Inserts a parameter in place.
    pub fn set(&mut self, name: &str, value: impl Into<PropertyValue>) {
        self.entries.insert(name.to_owned(), value.into());
    }

    /// Looks up a parameter.
    pub fn get(&self, name: &str) -> Option<&PropertyValue> {
        self.entries.get(name)
    }

    /// Looks up a string parameter.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(PropertyValue::as_str)
    }

    /// Looks up an integer parameter.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(PropertyValue::as_int)
    }

    /// Looks up a boolean parameter.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(PropertyValue::as_bool)
    }

    /// Looks up a float parameter (ints coerce).
    pub fn get_float(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(|v| v.as_float())
    }

    /// Returns the number of parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PropertyValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors_match_variants() {
        assert_eq!(PropertyValue::from("x").as_str(), Some("x"));
        assert_eq!(PropertyValue::from(3i64).as_int(), Some(3));
        assert_eq!(PropertyValue::from(true).as_bool(), Some(true));
        assert_eq!(PropertyValue::from(2.5).as_float(), Some(2.5));
        assert_eq!(PropertyValue::from(3i64).as_float(), Some(3.0));
        assert_eq!(PropertyValue::from("x").as_int(), None);
    }

    #[test]
    fn value_display() {
        assert_eq!(PropertyValue::from("hi").to_string(), "hi");
        assert_eq!(PropertyValue::from(7i64).to_string(), "7");
        assert_eq!(
            PropertyValue::Blob(Bytes::from_static(b"abc")).to_string(),
            "<3 bytes>"
        );
    }

    #[test]
    fn params_builder_and_lookup() {
        let p = Params::new()
            .with("a", 1i64)
            .with("b", "two")
            .with("c", 0.5);
        assert_eq!(p.len(), 3);
        assert_eq!(p.get_int("a"), Some(1));
        assert_eq!(p.get_str("b"), Some("two"));
        assert_eq!(p.get_float("c"), Some(0.5));
        assert!(p.get("d").is_none());
    }

    #[test]
    fn params_overwrite_and_iterate_in_order() {
        let mut p = Params::new().with("z", 1i64).with("a", 2i64);
        p.set("z", 3i64);
        let names: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(p.get_int("z"), Some(3));
    }

    #[test]
    fn empty_params() {
        let p = Params::new();
        assert!(p.is_empty());
        assert_eq!(p.iter().count(), 0);
    }
}
