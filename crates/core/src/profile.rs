//! Property profiles: a user's personalization as portable data.
//!
//! Placeless treats behaviour as something *attached* to documents, not
//! compiled into applications. A [`PropertySpec`] captures one active
//! property as registry kind + parameters; a profile is an ordered list of
//! specs (order matters — it is the transform chain order). Profiles render
//! to a line-oriented text format and parse back, so a user's
//! personalization can be stored, shipped, and re-applied:
//!
//! ```text
//! # eyal's defaults
//! spell-corrector
//! translate language="fr"
//! qos factor=10
//! proplang name="shout" source="upper | append(\"!\")"
//! ```

use crate::content::{Params, PropertyValue};
use crate::error::{PlacelessError, Result};
use crate::id::{DocumentId, PropertyId};
use crate::space::{DocumentSpace, Scope};
use std::sync::Arc;

/// One active property as data: registry kind + parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertySpec {
    /// The registered kind name.
    pub kind: String,
    /// Factory parameters.
    pub params: Params,
}

impl PropertySpec {
    /// Creates a spec.
    pub fn new(kind: &str, params: Params) -> Self {
        Self {
            kind: kind.to_owned(),
            params,
        }
    }

    /// Creates a parameterless spec.
    pub fn bare(kind: &str) -> Self {
        Self::new(kind, Params::new())
    }
}

/// Renders specs in the profile text format.
pub fn format_profile(specs: &[PropertySpec]) -> String {
    let mut out = String::new();
    for spec in specs {
        out.push_str(&spec.kind);
        for (name, value) in spec.params.iter() {
            out.push(' ');
            out.push_str(name);
            out.push('=');
            match value {
                PropertyValue::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            other => out.push(other),
                        }
                    }
                    out.push('"');
                }
                PropertyValue::Int(i) => out.push_str(&i.to_string()),
                PropertyValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                PropertyValue::Float(x) => {
                    // Keep a decimal point so floats parse back as floats.
                    if x.fract() == 0.0 && x.is_finite() {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&x.to_string());
                    }
                }
                PropertyValue::Blob(_) => out.push_str("\"<blob>\""),
            }
        }
        out.push('\n');
    }
    out
}

/// Parses the profile text format.
pub fn parse_profile(text: &str) -> Result<Vec<PropertySpec>> {
    let mut specs = Vec::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut chars = line.chars().peekable();
        let kind = read_ident(&mut chars).ok_or_else(|| bad(lineno, "expected a property kind"))?;
        let mut params = Params::new();
        loop {
            while chars.peek() == Some(&' ') {
                chars.next();
            }
            if chars.peek().is_none() {
                break;
            }
            let name =
                read_ident(&mut chars).ok_or_else(|| bad(lineno, "expected parameter name"))?;
            if chars.next() != Some('=') {
                return Err(bad(lineno, "expected `=` after parameter name"));
            }
            let value = read_value(&mut chars).map_err(|msg| bad(lineno, &msg))?;
            params.set(&name, value);
        }
        specs.push(PropertySpec::new(&kind, params));
    }
    Ok(specs)
}

fn bad(lineno: usize, message: &str) -> PlacelessError {
    PlacelessError::BadPropertyParams(format!("profile line {}: {message}", lineno + 1))
}

fn read_ident(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    let mut ident = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == ':' {
            ident.push(c);
            chars.next();
        } else {
            break;
        }
    }
    (!ident.is_empty()).then_some(ident)
}

fn read_value(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> std::result::Result<PropertyValue, String> {
    match chars.peek() {
        Some('"') => {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => return Ok(PropertyValue::Str(s)),
                    Some('\\') => match chars.next() {
                        Some('"') => s.push('"'),
                        Some('\\') => s.push('\\'),
                        Some('n') => s.push('\n'),
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    Some(c) => s.push(c),
                    None => return Err("unterminated string".to_owned()),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == '-' => {
            let mut number = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() || c == '.' || c == '-' {
                    number.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            if number.contains('.') {
                number
                    .parse::<f64>()
                    .map(PropertyValue::Float)
                    .map_err(|_| format!("bad float `{number}`"))
            } else {
                number
                    .parse::<i64>()
                    .map(PropertyValue::Int)
                    .map_err(|_| format!("bad integer `{number}`"))
            }
        }
        _ => {
            let word = read_ident(chars).ok_or("expected a value")?;
            match word.as_str() {
                "true" => Ok(PropertyValue::Bool(true)),
                "false" => Ok(PropertyValue::Bool(false)),
                other => Err(format!("bad value `{other}`")),
            }
        }
    }
}

/// Applies a profile to a document at the given scope, instantiating each
/// spec through the space's registry. Returns the attached property ids,
/// in profile order.
pub fn apply_profile(
    space: &Arc<DocumentSpace>,
    scope: Scope,
    doc: DocumentId,
    specs: &[PropertySpec],
) -> Result<Vec<PropertyId>> {
    specs
        .iter()
        .map(|spec| space.attach_by_name(scope, doc, &spec.kind, &spec.params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bare_and_parameterized() {
        let specs = parse_profile(
            "# comment\n\nspell-corrector\ntranslate language=\"fr\"\nqos factor=10.5 pin=true\nttl micros=5000\n",
        )
        .unwrap();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0], PropertySpec::bare("spell-corrector"));
        assert_eq!(specs[1].params.get_str("language"), Some("fr"));
        assert_eq!(specs[2].params.get_float("factor"), Some(10.5));
        assert_eq!(specs[2].params.get_bool("pin"), Some(true));
        assert_eq!(specs[3].params.get_int("micros"), Some(5_000));
    }

    #[test]
    fn format_then_parse_round_trips() {
        let specs = vec![
            PropertySpec::bare("watermark"),
            PropertySpec::new(
                "proplang",
                Params::new()
                    .with("name", "shout")
                    .with("source", "upper | append(\"!\")\nlower"),
            ),
            PropertySpec::new("qos", Params::new().with("factor", 3.0)),
            PropertySpec::new("summarize", Params::new().with("sentences", 2i64)),
            PropertySpec::new("flag", Params::new().with("enabled", false)),
        ];
        let text = format_profile(&specs);
        let reparsed = parse_profile(&text).unwrap();
        assert_eq!(reparsed, specs);
    }

    #[test]
    fn escaping_survives() {
        let specs = vec![PropertySpec::new(
            "proplang",
            Params::new().with("source", r#"replace("a\b", "c"d")"#),
        )];
        let reparsed = parse_profile(&format_profile(&specs)).unwrap();
        assert_eq!(reparsed, specs);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_profile("good-kind\nbad line =\n").err().unwrap();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(parse_profile("kind param=\"unterminated\n").is_err());
        assert!(parse_profile("kind param=1.2.3\n").is_err());
        assert!(parse_profile("kind param=maybe\n").is_err());
        assert!(parse_profile("=nokind\n").is_err());
    }

    #[test]
    fn apply_profile_attaches_in_order() {
        use crate::bitprovider::MemoryProvider;
        use crate::event::{EventKind, Interests};
        use crate::id::UserId;
        use crate::property::ActiveProperty;
        use placeless_simenv::VirtualClock;

        struct Named(String);
        impl ActiveProperty for Named {
            fn name(&self) -> &str {
                &self.0
            }
            fn interests(&self) -> Interests {
                Interests::of(&[EventKind::GetInputStream])
            }
        }

        let space = DocumentSpace::new(VirtualClock::new());
        space.registry().register("tag", |params| {
            Ok(Arc::new(Named(
                params.get_str("label").unwrap_or("tag").to_owned(),
            )))
        });
        let user = UserId(1);
        let doc = space.create_document(user, MemoryProvider::new("d", "x", 0));
        let specs = parse_profile("tag label=\"first\"\ntag label=\"second\"\n").unwrap();
        let ids = apply_profile(&space, Scope::Personal(user), doc, &specs).unwrap();
        assert_eq!(ids.len(), 2);
        let names: Vec<String> = space
            .list_properties(Scope::Personal(user), doc)
            .unwrap()
            .into_iter()
            .map(|(_, name)| name)
            .collect();
        assert_eq!(names, vec!["first", "second"]);
    }

    #[test]
    fn unknown_kinds_fail_atomically_per_spec() {
        use crate::bitprovider::MemoryProvider;
        use crate::id::UserId;
        use placeless_simenv::VirtualClock;

        let space = DocumentSpace::new(VirtualClock::new());
        let user = UserId(1);
        let doc = space.create_document(user, MemoryProvider::new("d", "x", 0));
        let specs = parse_profile("ghost-kind\n").unwrap();
        assert!(apply_profile(&space, Scope::Personal(user), doc, &specs).is_err());
    }
}
