//! Document events and property interest sets.
//!
//! Active properties are event driven: they register for the events that can
//! occur on a document (`getInputStream`, `getOutputStream`, property
//! mutations, timers, ...) and are invoked whenever a registered event
//! fires. This module defines the event vocabulary and the compact interest
//! set used for registration.

use crate::id::{DocumentId, PropertyId, UserId};

/// The kinds of events a property can register for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// A read path is being assembled (`getInputStream`).
    GetInputStream = 1 << 0,
    /// A write path is being assembled (`getOutputStream`).
    GetOutputStream = 1 << 1,
    /// A property was attached to the document.
    PropertySet = 1 << 2,
    /// A property was removed from the document.
    PropertyRemoved = 1 << 3,
    /// A property instance was modified in place (e.g. upgraded).
    PropertyModified = 1 << 4,
    /// The relative order of the document's properties changed.
    PropertyReordered = 1 << 5,
    /// A periodic timer tick (used by e.g. replication properties).
    Timer = 1 << 6,
    /// A write path completed and new content reached the bit-provider.
    ContentWritten = 1 << 7,
    /// A cache served a read locally and forwarded the operation event
    /// (the `CacheableWithEvents` collaboration mode).
    CacheRead = 1 << 8,
    /// A cache absorbed a write locally (write-back) and forwarded the
    /// operation event.
    CacheWrite = 1 << 9,
}

impl EventKind {
    /// All event kinds, in declaration order.
    pub const ALL: [EventKind; 10] = [
        EventKind::GetInputStream,
        EventKind::GetOutputStream,
        EventKind::PropertySet,
        EventKind::PropertyRemoved,
        EventKind::PropertyModified,
        EventKind::PropertyReordered,
        EventKind::Timer,
        EventKind::ContentWritten,
        EventKind::CacheRead,
        EventKind::CacheWrite,
    ];
}

/// A set of [`EventKind`]s a property is interested in, stored as a bitmask.
///
/// # Examples
///
/// ```
/// use placeless_core::event::{EventKind, Interests};
///
/// let set = Interests::of(&[EventKind::GetInputStream, EventKind::Timer]);
/// assert!(set.contains(EventKind::Timer));
/// assert!(!set.contains(EventKind::GetOutputStream));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interests(u16);

impl Interests {
    /// The empty interest set.
    pub const NONE: Interests = Interests(0);

    /// Builds an interest set from a slice of kinds.
    pub fn of(kinds: &[EventKind]) -> Self {
        let mut mask = 0;
        for &k in kinds {
            mask |= k as u16;
        }
        Interests(mask)
    }

    /// Returns an interest set containing every event kind.
    pub fn all() -> Self {
        Interests::of(&EventKind::ALL)
    }

    /// Returns `true` if `kind` is in the set.
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & kind as u16 != 0
    }

    /// Returns the union of two interest sets.
    pub fn union(self, other: Interests) -> Interests {
        Interests(self.0 | other.0)
    }

    /// Adds a kind, builder style.
    pub fn and(self, kind: EventKind) -> Interests {
        Interests(self.0 | kind as u16)
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the kinds in the set.
    pub fn iter(self) -> impl Iterator<Item = EventKind> {
        EventKind::ALL
            .into_iter()
            .filter(move |&k| self.contains(k))
    }
}

/// Where on a document an event originated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSite {
    /// On the base document (universal scope).
    Base,
    /// On a user's document reference (personal scope).
    Reference(UserId),
}

/// A concrete event delivered to registered active properties.
#[derive(Debug, Clone)]
pub struct DocumentEvent {
    /// The kind of event.
    pub kind: EventKind,
    /// The base document the event concerns.
    pub doc: DocumentId,
    /// The user whose operation triggered the event, when applicable.
    pub user: Option<UserId>,
    /// Where the mutated property lives, for property-mutation events.
    pub site: Option<EventSite>,
    /// The property involved, for property-mutation events.
    pub property: Option<PropertyId>,
    /// The name of the property involved, for property-mutation events.
    pub property_name: Option<String>,
}

impl DocumentEvent {
    /// Creates a bare event of `kind` on `doc`.
    pub fn new(kind: EventKind, doc: DocumentId) -> Self {
        Self {
            kind,
            doc,
            user: None,
            site: None,
            property: None,
            property_name: None,
        }
    }

    /// Sets the triggering user, builder style.
    pub fn by(mut self, user: UserId) -> Self {
        self.user = Some(user);
        self
    }

    /// Sets the property-mutation details, builder style.
    pub fn about_property(mut self, site: EventSite, id: PropertyId, name: &str) -> Self {
        self.site = Some(site);
        self.property = Some(id);
        self.property_name = Some(name.to_owned());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interests_membership() {
        let set = Interests::of(&[EventKind::Timer]);
        assert!(set.contains(EventKind::Timer));
        for k in EventKind::ALL {
            if k != EventKind::Timer {
                assert!(!set.contains(k), "{k:?} should be absent");
            }
        }
    }

    #[test]
    fn interests_union_and_builder() {
        let a = Interests::of(&[EventKind::GetInputStream]);
        let b = Interests::of(&[EventKind::GetOutputStream]);
        let u = a.union(b).and(EventKind::Timer);
        assert!(u.contains(EventKind::GetInputStream));
        assert!(u.contains(EventKind::GetOutputStream));
        assert!(u.contains(EventKind::Timer));
    }

    #[test]
    fn interests_all_and_none() {
        assert!(Interests::NONE.is_empty());
        let all = Interests::all();
        for k in EventKind::ALL {
            assert!(all.contains(k));
        }
        assert_eq!(all.iter().count(), EventKind::ALL.len());
    }

    #[test]
    fn event_kinds_have_distinct_bits() {
        for (i, a) in EventKind::ALL.iter().enumerate() {
            for b in &EventKind::ALL[i + 1..] {
                assert_eq!(*a as u16 & *b as u16, 0, "{a:?} and {b:?} overlap");
            }
        }
    }

    #[test]
    fn event_builder_fills_fields() {
        let ev = DocumentEvent::new(EventKind::PropertySet, DocumentId(1))
            .by(UserId(2))
            .about_property(EventSite::Reference(UserId(2)), PropertyId(5), "spell");
        assert_eq!(ev.kind, EventKind::PropertySet);
        assert_eq!(ev.user, Some(UserId(2)));
        assert_eq!(ev.property, Some(PropertyId(5)));
        assert_eq!(ev.property_name.as_deref(), Some("spell"));
        assert_eq!(ev.site, Some(EventSite::Reference(UserId(2))));
    }

    #[test]
    fn interests_iter_matches_contains() {
        let set = Interests::of(&[EventKind::CacheRead, EventKind::ContentWritten]);
        let kinds: Vec<EventKind> = set.iter().collect();
        assert_eq!(kinds, vec![EventKind::ContentWritten, EventKind::CacheRead]);
    }
}
