//! Replacement costs supplied by bit-providers and active properties.
//!
//! §3 "Cache Management": as content flows back through the read path, the
//! bit-provider initialises the document's replacement cost with its fetch
//! cost, and each active property adds its own execution cost. QoS
//! properties (§5) may additionally *inflate* the cost multiplicatively so
//! the replacement policy favours keeping their documents resident.

/// The accumulated cost of re-producing a cached document.
///
/// Units are simulated microseconds of work; the Greedy-Dual-Size policy
/// consumes this value directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplacementCost {
    micros: f64,
    inflation: f64,
}

impl ReplacementCost {
    /// A zero cost with no inflation.
    pub const ZERO: ReplacementCost = ReplacementCost {
        micros: 0.0,
        inflation: 1.0,
    };

    /// Initialises the cost with the bit-provider's fetch cost.
    pub fn from_fetch(micros: u64) -> Self {
        ReplacementCost {
            micros: micros as f64,
            inflation: 1.0,
        }
    }

    /// Adds a property's execution cost.
    pub fn add_micros(&mut self, micros: u64) {
        self.micros += micros as f64;
    }

    /// Applies a multiplicative QoS inflation factor (clamped below at 1.0:
    /// QoS properties can only make documents more valuable to keep).
    pub fn inflate(&mut self, factor: f64) {
        self.inflation *= factor.max(1.0);
    }

    /// Returns the accumulated raw cost (before inflation) in microseconds.
    pub fn raw_micros(&self) -> f64 {
        self.micros
    }

    /// Returns the effective cost after QoS inflation.
    pub fn effective_micros(&self) -> f64 {
        self.micros * self.inflation
    }

    /// Returns the inflation factor.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }
}

impl Default for ReplacementCost {
    fn default() -> Self {
        ReplacementCost::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_fetch_and_property_costs() {
        let mut cost = ReplacementCost::from_fetch(1_000);
        cost.add_micros(250);
        cost.add_micros(750);
        assert_eq!(cost.raw_micros(), 2_000.0);
        assert_eq!(cost.effective_micros(), 2_000.0);
    }

    #[test]
    fn inflation_multiplies() {
        let mut cost = ReplacementCost::from_fetch(100);
        cost.inflate(4.0);
        cost.inflate(2.0);
        assert_eq!(cost.inflation(), 8.0);
        assert_eq!(cost.effective_micros(), 800.0);
        assert_eq!(cost.raw_micros(), 100.0, "raw cost unaffected");
    }

    #[test]
    fn inflation_clamps_below_one() {
        let mut cost = ReplacementCost::from_fetch(100);
        cost.inflate(0.1);
        assert_eq!(cost.effective_micros(), 100.0);
    }

    #[test]
    fn zero_is_identity() {
        let cost = ReplacementCost::ZERO;
        assert_eq!(cost.effective_micros(), 0.0);
        assert_eq!(ReplacementCost::default(), ReplacementCost::ZERO);
    }

    #[test]
    fn add_after_inflate_is_also_inflated() {
        // Effective cost is (sum of costs) * inflation, independent of order.
        let mut a = ReplacementCost::from_fetch(100);
        a.inflate(2.0);
        a.add_micros(100);
        let mut b = ReplacementCost::from_fetch(100);
        b.add_micros(100);
        b.inflate(2.0);
        assert_eq!(a.effective_micros(), b.effective_micros());
    }
}
