//! Error types for the Placeless middleware.

use crate::id::{DocumentId, PropertyId, UserId};
use std::fmt;

/// Result alias used across the Placeless crates.
pub type Result<T> = std::result::Result<T, PlacelessError>;

/// Errors surfaced by the Placeless middleware and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacelessError {
    /// The named base document does not exist.
    NoSuchDocument(DocumentId),
    /// The user holds no reference to the document.
    NoSuchReference(UserId, DocumentId),
    /// No property with this id is attached to the document.
    NoSuchProperty(PropertyId),
    /// A repository-level failure (file missing, HTTP error, ...).
    Repository(String),
    /// A stream was used after being closed.
    StreamClosed,
    /// An active property failed while executing.
    Property {
        /// Name of the failing property.
        name: String,
        /// Human-readable failure description.
        reason: String,
    },
    /// The registry has no factory under this name.
    UnknownPropertyKind(String),
    /// A property factory rejected its parameters.
    BadPropertyParams(String),
    /// The document's properties deem the content uncacheable, and the
    /// caller required a cacheable read.
    Uncacheable(DocumentId),
    /// A PropLang program failed to parse or execute.
    Script(String),
    /// Write access denied (e.g. read-only provider).
    ReadOnly(DocumentId),
}

impl fmt::Display for PlacelessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacelessError::NoSuchDocument(d) => write!(f, "no such document: {d}"),
            PlacelessError::NoSuchReference(u, d) => {
                write!(f, "user {u} holds no reference to {d}")
            }
            PlacelessError::NoSuchProperty(p) => write!(f, "no such property: {p}"),
            PlacelessError::Repository(msg) => write!(f, "repository error: {msg}"),
            PlacelessError::StreamClosed => write!(f, "stream already closed"),
            PlacelessError::Property { name, reason } => {
                write!(f, "active property `{name}` failed: {reason}")
            }
            PlacelessError::UnknownPropertyKind(name) => {
                write!(f, "no registered property kind `{name}`")
            }
            PlacelessError::BadPropertyParams(msg) => {
                write!(f, "bad property parameters: {msg}")
            }
            PlacelessError::Uncacheable(d) => write!(f, "document {d} is uncacheable"),
            PlacelessError::Script(msg) => write!(f, "proplang error: {msg}"),
            PlacelessError::ReadOnly(d) => write!(f, "document {d} is read-only"),
        }
    }
}

impl std::error::Error for PlacelessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = PlacelessError::NoSuchReference(UserId(4), DocumentId(9));
        assert_eq!(err.to_string(), "user user-4 holds no reference to doc-9");
        let err = PlacelessError::Property {
            name: "spell".into(),
            reason: "dictionary missing".into(),
        };
        assert!(err.to_string().contains("spell"));
        assert!(err.to_string().contains("dictionary missing"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(PlacelessError::StreamClosed, PlacelessError::StreamClosed);
        assert_ne!(
            PlacelessError::NoSuchDocument(DocumentId(1)),
            PlacelessError::NoSuchDocument(DocumentId(2))
        );
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(PlacelessError::StreamClosed);
        assert_eq!(err.to_string(), "stream already closed");
    }
}
