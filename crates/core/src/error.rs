//! Error types for the Placeless middleware.

use crate::id::{DocumentId, PropertyId, UserId};
use std::fmt;

/// Result alias used across the Placeless crates.
pub type Result<T> = std::result::Result<T, PlacelessError>;

/// Errors surfaced by the Placeless middleware and its substrates.
///
/// Marked `#[non_exhaustive]`: the failure taxonomy grows as new
/// substrates and resilience mechanisms land, so downstream matches must
/// carry a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacelessError {
    /// The named base document does not exist.
    NoSuchDocument(DocumentId),
    /// The user holds no reference to the document.
    NoSuchReference(UserId, DocumentId),
    /// No property with this id is attached to the document.
    NoSuchProperty(PropertyId),
    /// A repository-level failure (file missing, HTTP error, ...).
    Repository(String),
    /// A stream was used after being closed.
    StreamClosed,
    /// An active property failed while executing.
    Property {
        /// Name of the failing property.
        name: String,
        /// Human-readable failure description.
        reason: String,
    },
    /// The registry has no factory under this name.
    UnknownPropertyKind(String),
    /// A property factory rejected its parameters.
    BadPropertyParams(String),
    /// The document's properties deem the content uncacheable, and the
    /// caller required a cacheable read.
    Uncacheable(DocumentId),
    /// A PropLang program failed to parse or execute.
    Script(String),
    /// Write access denied (e.g. read-only provider).
    ReadOnly(DocumentId),
    /// The origin repository is temporarily unreachable (outage,
    /// partition, dropped connection). Transient: retrying may succeed.
    Unavailable {
        /// The unreachable origin, as described by its provider.
        source: String,
        /// Hint for when a retry might succeed (µs from now), if known.
        retry_after: Option<u64>,
    },
    /// An operation exceeded its deadline. Transient: retrying may
    /// succeed, but the attempt already consumed its latency budget.
    Timeout {
        /// The origin or operation that timed out.
        source: String,
        /// Virtual microseconds consumed before giving up.
        elapsed_micros: u64,
    },
    /// A recovered (journaled) write-back write conflicts with a newer
    /// origin version: the origin changed after the write was buffered
    /// but before it could be flushed. Non-fatal — recovery resolves it
    /// through a keep-mine/keep-theirs hook and reports the conflict
    /// rather than silently applying last-writer-wins. Not transient:
    /// retrying cannot make the two versions agree.
    Conflict {
        /// The document whose buffered write conflicts.
        doc: DocumentId,
        /// The user whose buffered write conflicts.
        user: UserId,
    },
    /// The cache shed this request under overload: its remaining deadline
    /// budget could not cover the expected queue wait plus service time,
    /// or the brownout ladder rejected its priority class. Not transient:
    /// an immediate retry would join the same queue and be shed again —
    /// callers should back off at least `retry_after` first.
    Overloaded {
        /// Suggested wait before retrying (µs from now).
        retry_after: u64,
    },
}

impl fmt::Display for PlacelessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacelessError::NoSuchDocument(d) => write!(f, "no such document: {d}"),
            PlacelessError::NoSuchReference(u, d) => {
                write!(f, "user {u} holds no reference to {d}")
            }
            PlacelessError::NoSuchProperty(p) => write!(f, "no such property: {p}"),
            PlacelessError::Repository(msg) => write!(f, "repository error: {msg}"),
            PlacelessError::StreamClosed => write!(f, "stream already closed"),
            PlacelessError::Property { name, reason } => {
                write!(f, "active property `{name}` failed: {reason}")
            }
            PlacelessError::UnknownPropertyKind(name) => {
                write!(f, "no registered property kind `{name}`")
            }
            PlacelessError::BadPropertyParams(msg) => {
                write!(f, "bad property parameters: {msg}")
            }
            PlacelessError::Uncacheable(d) => write!(f, "document {d} is uncacheable"),
            PlacelessError::Script(msg) => write!(f, "proplang error: {msg}"),
            PlacelessError::ReadOnly(d) => write!(f, "document {d} is read-only"),
            PlacelessError::Unavailable {
                source,
                retry_after,
            } => {
                write!(f, "origin `{source}` unavailable")?;
                if let Some(after) = retry_after {
                    write!(f, " (retry after {after}µs)")?;
                }
                Ok(())
            }
            PlacelessError::Timeout {
                source,
                elapsed_micros,
            } => {
                write!(f, "`{source}` timed out after {elapsed_micros}µs")
            }
            PlacelessError::Conflict { doc, user } => {
                write!(
                    f,
                    "recovered write for {doc} by {user} conflicts with a newer origin version"
                )
            }
            PlacelessError::Overloaded { retry_after } => {
                write!(f, "shed under overload (retry after {retry_after}µs)")
            }
        }
    }
}

impl std::error::Error for PlacelessError {}

impl PlacelessError {
    /// Converts an injected link fault into the middleware error space.
    pub fn from_fault(source: &str, fault: placeless_simenv::FaultError, elapsed: u64) -> Self {
        match fault.kind {
            placeless_simenv::FaultErrorKind::Unavailable => PlacelessError::Unavailable {
                source: source.to_owned(),
                retry_after: fault.retry_after,
            },
            placeless_simenv::FaultErrorKind::Timeout => PlacelessError::Timeout {
                source: source.to_owned(),
                elapsed_micros: elapsed,
            },
        }
    }

    /// Returns `true` for failures a retry might cure (the resilient
    /// fetch pipeline only retries these).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            PlacelessError::Unavailable { .. } | PlacelessError::Timeout { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = PlacelessError::NoSuchReference(UserId(4), DocumentId(9));
        assert_eq!(err.to_string(), "user user-4 holds no reference to doc-9");
        let err = PlacelessError::Property {
            name: "spell".into(),
            reason: "dictionary missing".into(),
        };
        assert!(err.to_string().contains("spell"));
        assert!(err.to_string().contains("dictionary missing"));
        let err = PlacelessError::Conflict {
            doc: DocumentId(3),
            user: UserId(8),
        };
        assert!(err.to_string().contains("doc-3"), "{err}");
        assert!(err.to_string().contains("conflicts"), "{err}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(PlacelessError::StreamClosed, PlacelessError::StreamClosed);
        assert_ne!(
            PlacelessError::NoSuchDocument(DocumentId(1)),
            PlacelessError::NoSuchDocument(DocumentId(2))
        );
    }

    #[test]
    fn transient_classification() {
        let unavailable = PlacelessError::Unavailable {
            source: "web:origin".into(),
            retry_after: Some(1_000),
        };
        let timeout = PlacelessError::Timeout {
            source: "dms:spec".into(),
            elapsed_micros: 80_000,
        };
        assert!(unavailable.is_transient());
        assert!(timeout.is_transient());
        assert!(!PlacelessError::StreamClosed.is_transient());
        assert!(!PlacelessError::NoSuchDocument(DocumentId(1)).is_transient());
        assert!(
            !PlacelessError::Conflict {
                doc: DocumentId(1),
                user: UserId(2),
            }
            .is_transient(),
            "a version conflict cannot be cured by retrying"
        );
        let shed = PlacelessError::Overloaded { retry_after: 5_000 };
        assert!(
            !shed.is_transient(),
            "an immediate retry would join the same overloaded queue"
        );
        assert!(shed.to_string().contains("retry after 5000µs"), "{shed}");
        assert!(unavailable.to_string().contains("retry after 1000µs"));
        assert!(timeout.to_string().contains("80000µs"));
    }

    #[test]
    fn from_fault_maps_kinds() {
        use placeless_simenv::{FaultError, FaultErrorKind};
        let err = PlacelessError::from_fault(
            "fs:/doc",
            FaultError {
                kind: FaultErrorKind::Unavailable,
                retry_after: Some(7),
            },
            0,
        );
        assert_eq!(
            err,
            PlacelessError::Unavailable {
                source: "fs:/doc".into(),
                retry_after: Some(7)
            }
        );
        let err = PlacelessError::from_fault(
            "fs:/doc",
            FaultError {
                kind: FaultErrorKind::Timeout,
                retry_after: None,
            },
            123,
        );
        assert!(matches!(
            err,
            PlacelessError::Timeout {
                elapsed_micros: 123,
                ..
            }
        ));
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(PlacelessError::StreamClosed);
        assert_eq!(err.to_string(), "stream already closed");
    }
}
