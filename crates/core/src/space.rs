//! The document space: the Placeless middleware API.
//!
//! A [`DocumentSpace`] manages base documents and per-user references,
//! dispatches document events to registered active properties, assembles the
//! read and write paths (interposing each property's custom streams in the
//! order the paper prescribes), and applies the follow-up mutations
//! properties request.
//!
//! Path order (§2):
//! * **read** — bit-provider → base properties (attachment order) →
//!   reference properties → application;
//! * **write** — application → reference properties → base properties →
//!   bit-provider (the mirror image).

use crate::bitprovider::BitProvider;
use crate::collection::Collections;
use crate::content::{Params, PropertyValue};
use crate::describe::{DocumentDescription, PropertyInfo};
use crate::document::{BaseDocument, DocumentReference};
use crate::error::{PlacelessError, Result};
use crate::event::{DocumentEvent, EventKind, EventSite};
use crate::id::{DocumentId, IdAllocator, PropertyId, UserId};
use crate::notifier::InvalidationBus;
use crate::plan::TransformPlan;
use crate::property::{
    ActiveProperty, AttachedProperty, EventCtx, FollowUp, PathReport, PropsSnapshot,
};
use crate::registry::PropertyRegistry;
use crate::streams::{
    read_all, write_all, write_all_bytes, CollectOutput, InputStream, OutputStream,
};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use placeless_simenv::{LatencyModel, VirtualClock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A snapshot of one document's *base half* of the read chain, issued by
/// [`DocumentSpace::read_plan_cached`] and held by a cache across reads.
///
/// The lease carries the user-independent inputs of plan compilation — the
/// bit-provider handle, the universal properties interested in the read
/// path, and the universal static pairs — stamped with the base document's
/// chain epoch at capture. While the epoch still matches, the space can
/// compile a user's read plan from the lease plus a fresh personal half in
/// a single middleware hop. Any universal property mutation bumps the
/// epoch and silently retires every outstanding lease; nothing else about
/// a document can invalidate one, because everything else (personal
/// properties, static shadowing, transform tokens) is re-read on every
/// compile.
pub struct BaseChainLease {
    /// The document the lease covers.
    pub doc: DocumentId,
    /// The base chain epoch at capture time.
    pub epoch: u64,
    provider: Arc<dyn BitProvider>,
    base_props: Vec<Arc<dyn ActiveProperty>>,
    universal_pairs: Vec<(String, PropertyValue)>,
}

impl std::fmt::Debug for BaseChainLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaseChainLease")
            .field("doc", &self.doc)
            .field("epoch", &self.epoch)
            .field("base_props", &self.base_props.len())
            .field("universal_pairs", &self.universal_pairs.len())
            .finish()
    }
}

/// Where a property operation targets: the base (universal) or a user's
/// reference (personal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The base document — universal properties.
    Universal,
    /// A user's reference — personal properties.
    Personal(UserId),
}

impl Scope {
    fn site(self) -> EventSite {
        match self {
            Scope::Universal => EventSite::Base,
            Scope::Personal(u) => EventSite::Reference(u),
        }
    }
}

struct Inner {
    bases: HashMap<DocumentId, BaseDocument>,
    refs: HashMap<(UserId, DocumentId), DocumentReference>,
}

/// The Placeless Documents middleware.
///
/// Construct with [`DocumentSpace::new`] and keep behind an [`Arc`]; the
/// write path captures a handle so it can fire `ContentWritten` when the
/// application closes its stream.
pub struct DocumentSpace {
    clock: VirtualClock,
    bus: Arc<InvalidationBus>,
    ids: IdAllocator,
    registry: PropertyRegistry,
    middleware: LatencyModel,
    inner: RwLock<Inner>,
    collections: Collections,
    ops: AtomicU64,
}

impl DocumentSpace {
    /// Creates a space over `clock` with the default middleware service
    /// cost (300 µs per operation + 50 µs per KB, modelling the two
    /// Placeless server hops of the prototype).
    pub fn new(clock: VirtualClock) -> Arc<Self> {
        Self::with_middleware_cost(clock, LatencyModel::new(300, 50))
    }

    /// Creates a space with an explicit middleware cost model.
    pub fn with_middleware_cost(clock: VirtualClock, middleware: LatencyModel) -> Arc<Self> {
        Arc::new(Self {
            clock,
            bus: InvalidationBus::new(),
            ids: IdAllocator::new(),
            registry: PropertyRegistry::new(),
            middleware,
            inner: RwLock::new(Inner {
                bases: HashMap::new(),
                refs: HashMap::new(),
            }),
            collections: Collections::new(),
            ops: AtomicU64::new(0),
        })
    }

    /// Returns the space's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Returns the invalidation bus caches subscribe to.
    pub fn bus(&self) -> &Arc<InvalidationBus> {
        &self.bus
    }

    /// Returns the property registry (for attach-by-name).
    pub fn registry(&self) -> &PropertyRegistry {
        &self.registry
    }

    /// Returns how many middleware operations have executed — the "load on
    /// the Placeless system" measured by the notifier-vs-verifier
    /// experiment.
    pub fn ops_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    fn charge_op(&self, bytes: u64) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.middleware.charge(&self.clock, bytes);
    }

    /// Advances `doc`'s chain epoch when a universal property mutated.
    /// Must run under the `inner` write lock, in the same critical section
    /// as the mutation itself.
    fn bump_chain_epoch(inner: &mut Inner, scope: Scope, doc: DocumentId) {
        if matches!(scope, Scope::Universal) {
            if let Some(base) = inner.bases.get_mut(&doc) {
                base.chain_epoch += 1;
            }
        }
    }

    /// Returns `doc`'s current chain epoch — the counter behind
    /// [`BaseChainLease`] validation.
    pub fn chain_epoch(&self, doc: DocumentId) -> Option<u64> {
        self.inner.read().bases.get(&doc).map(|b| b.chain_epoch)
    }

    // ------------------------------------------------------------------
    // Document management
    // ------------------------------------------------------------------

    /// Creates a base document over `provider`; the creator automatically
    /// receives a reference.
    pub fn create_document(&self, owner: UserId, provider: Arc<dyn BitProvider>) -> DocumentId {
        let id = self.ids.next_document();
        let mut inner = self.inner.write();
        inner.bases.insert(id, BaseDocument::new(id, provider));
        inner
            .refs
            .insert((owner, id), DocumentReference::new(owner, id));
        id
    }

    /// Gives `user` a reference to an existing document.
    pub fn add_reference(&self, user: UserId, doc: DocumentId) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.bases.contains_key(&doc) {
            return Err(PlacelessError::NoSuchDocument(doc));
        }
        inner
            .refs
            .entry((user, doc))
            .or_insert_with(|| DocumentReference::new(user, doc));
        Ok(())
    }

    /// Returns `true` if `user` holds a reference to `doc`.
    pub fn has_reference(&self, user: UserId, doc: DocumentId) -> bool {
        self.inner.read().refs.contains_key(&(user, doc))
    }

    /// Returns the ids of all documents in the space.
    pub fn documents(&self) -> Vec<DocumentId> {
        let mut ids: Vec<DocumentId> = self.inner.read().bases.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Returns the users holding references to `doc`.
    pub fn users_of(&self, doc: DocumentId) -> Vec<UserId> {
        let mut users: Vec<UserId> = self
            .inner
            .read()
            .refs
            .keys()
            .filter(|(_, d)| *d == doc)
            .map(|(u, _)| *u)
            .collect();
        users.sort();
        users
    }

    /// Drops `user`'s reference to `doc` (personal properties included).
    /// The user's cached versions are invalidated through the bus.
    pub fn remove_reference(&self, user: UserId, doc: DocumentId) -> Result<()> {
        let removed = self.inner.write().refs.remove(&(user, doc)).is_some();
        if !removed {
            return Err(PlacelessError::NoSuchReference(user, doc));
        }
        self.bus
            .post(crate::notifier::Invalidation::UserDocument(doc, user));
        Ok(())
    }

    /// Deletes a document entirely: base, every reference, and collection
    /// memberships. Every cached version is invalidated through the bus.
    pub fn delete_document(&self, doc: DocumentId) -> Result<()> {
        {
            let mut inner = self.inner.write();
            if inner.bases.remove(&doc).is_none() {
                return Err(PlacelessError::NoSuchDocument(doc));
            }
            inner.refs.retain(|(_, d), _| *d != doc);
        }
        for name in self.collections.collections_of(doc) {
            self.collections.remove(&name, doc);
        }
        self.bus.post(crate::notifier::Invalidation::Document(doc));
        Ok(())
    }

    /// Describes a document as `user` sees it: provider, users, property
    /// chains, and collections.
    pub fn describe(&self, user: UserId, doc: DocumentId) -> Result<DocumentDescription> {
        let inner = self.inner.read();
        let base = inner
            .bases
            .get(&doc)
            .ok_or(PlacelessError::NoSuchDocument(doc))?;
        let reference = inner
            .refs
            .get(&(user, doc))
            .ok_or(PlacelessError::NoSuchReference(user, doc))?;
        let info = |slot: &crate::property::PropertySlot| PropertyInfo {
            id: slot.id,
            name: slot.prop.name().to_owned(),
            active: slot.prop.as_active().is_some(),
            value: slot.prop.as_static().map(|v| v.to_string()),
        };
        let mut users: Vec<UserId> = inner
            .refs
            .keys()
            .filter(|(_, d)| *d == doc)
            .map(|(u, _)| *u)
            .collect();
        users.sort();
        Ok(DocumentDescription {
            doc,
            user,
            provider: base.provider.describe(),
            users,
            universal: base.universal.iter().map(info).collect(),
            personal: reference.personal.iter().map(info).collect(),
            collections: self.collections.collections_of(doc),
        })
    }

    // ------------------------------------------------------------------
    // Collections (§5: caching for related documents)
    // ------------------------------------------------------------------

    /// Adds `doc` to the named collection. Membership is also recorded as
    /// a universal `collection` static property, so the mutation flows
    /// through the normal property-event machinery.
    pub fn add_to_collection(self: &Arc<Self>, name: &str, doc: DocumentId) -> Result<()> {
        if !self.inner.read().bases.contains_key(&doc) {
            return Err(PlacelessError::NoSuchDocument(doc));
        }
        if self.collections.add(name, doc) {
            self.attach_static(Scope::Universal, doc, "collection", name)?;
        }
        Ok(())
    }

    /// Removes `doc` from the named collection.
    pub fn remove_from_collection(self: &Arc<Self>, name: &str, doc: DocumentId) -> Result<()> {
        if self.collections.remove(name, doc) {
            // Drop the matching `collection` static property, if present.
            let id = {
                let inner = self.inner.read();
                inner.bases.get(&doc).and_then(|base| {
                    base.universal.iter().find_map(|slot| {
                        match (&slot.prop.name(), slot.prop.as_static()) {
                            (&"collection", Some(value)) if value.as_str() == Some(name) => {
                                Some(slot.id)
                            }
                            _ => None,
                        }
                    })
                })
            };
            if let Some(id) = id {
                self.remove_property(Scope::Universal, doc, id)?;
            }
        }
        Ok(())
    }

    /// Returns the members of a collection, sorted.
    pub fn collection_members(&self, name: &str) -> Vec<DocumentId> {
        self.collections.members(name)
    }

    /// Returns the collections `doc` belongs to, sorted.
    pub fn collections_of(&self, doc: DocumentId) -> Vec<String> {
        self.collections.collections_of(doc)
    }

    // ------------------------------------------------------------------
    // Property management
    // ------------------------------------------------------------------

    /// Attaches a static property, firing `PropertySet`.
    pub fn attach_static(
        self: &Arc<Self>,
        scope: Scope,
        doc: DocumentId,
        name: &str,
        value: impl Into<PropertyValue>,
    ) -> Result<PropertyId> {
        self.attach(
            scope,
            doc,
            AttachedProperty::Static {
                name: name.to_owned(),
                value: value.into(),
            },
        )
    }

    /// Attaches an active property, firing `PropertySet`.
    pub fn attach_active(
        self: &Arc<Self>,
        scope: Scope,
        doc: DocumentId,
        prop: Arc<dyn ActiveProperty>,
    ) -> Result<PropertyId> {
        self.attach(scope, doc, AttachedProperty::Active(prop))
    }

    /// Instantiates a registered property kind and attaches it.
    pub fn attach_by_name(
        self: &Arc<Self>,
        scope: Scope,
        doc: DocumentId,
        kind: &str,
        params: &Params,
    ) -> Result<PropertyId> {
        let prop = self.registry.instantiate(kind, params)?;
        self.attach_active(scope, doc, prop)
    }

    fn attach(
        self: &Arc<Self>,
        scope: Scope,
        doc: DocumentId,
        prop: AttachedProperty,
    ) -> Result<PropertyId> {
        self.charge_op(0);
        let id = self.ids.next_property();
        let name = prop.name().to_owned();
        {
            let mut inner = self.inner.write();
            self.list_mut(&mut inner, scope, doc)?.attach(id, prop);
            Self::bump_chain_epoch(&mut inner, scope, doc);
        }
        self.dispatch(
            DocumentEvent::new(EventKind::PropertySet, doc).about_property(scope.site(), id, &name),
        )?;
        Ok(id)
    }

    /// Removes a property, firing `PropertyRemoved`.
    pub fn remove_property(
        self: &Arc<Self>,
        scope: Scope,
        doc: DocumentId,
        id: PropertyId,
    ) -> Result<()> {
        self.charge_op(0);
        let removed = {
            let mut inner = self.inner.write();
            let removed = self.list_mut(&mut inner, scope, doc)?.remove(id)?;
            Self::bump_chain_epoch(&mut inner, scope, doc);
            removed
        };
        self.dispatch(
            DocumentEvent::new(EventKind::PropertyRemoved, doc).about_property(
                scope.site(),
                id,
                removed.name(),
            ),
        )
    }

    /// Replaces a property in place (a *modification*), firing
    /// `PropertyModified`.
    pub fn modify_property(
        self: &Arc<Self>,
        scope: Scope,
        doc: DocumentId,
        id: PropertyId,
        replacement: AttachedProperty,
    ) -> Result<()> {
        self.charge_op(0);
        let name = replacement.name().to_owned();
        {
            let mut inner = self.inner.write();
            self.list_mut(&mut inner, scope, doc)?
                .replace(id, replacement)?;
            Self::bump_chain_epoch(&mut inner, scope, doc);
        }
        self.dispatch(
            DocumentEvent::new(EventKind::PropertyModified, doc).about_property(
                scope.site(),
                id,
                &name,
            ),
        )
    }

    /// Moves a property to a new position, firing `PropertyReordered`.
    pub fn reorder_property(
        self: &Arc<Self>,
        scope: Scope,
        doc: DocumentId,
        id: PropertyId,
        index: usize,
    ) -> Result<()> {
        self.charge_op(0);
        let name = {
            let mut inner = self.inner.write();
            let list = self.list_mut(&mut inner, scope, doc)?;
            let name = list
                .get(id)
                .ok_or(PlacelessError::NoSuchProperty(id))?
                .prop
                .name()
                .to_owned();
            list.move_to(id, index)?;
            Self::bump_chain_epoch(&mut inner, scope, doc);
            name
        };
        self.dispatch(
            DocumentEvent::new(EventKind::PropertyReordered, doc).about_property(
                scope.site(),
                id,
                &name,
            ),
        )
    }

    /// Returns the value of the named static property, personal scope
    /// shadowing universal.
    pub fn property_value(
        &self,
        user: UserId,
        doc: DocumentId,
        name: &str,
    ) -> Option<PropertyValue> {
        let inner = self.inner.read();
        if let Some(r) = inner.refs.get(&(user, doc)) {
            if let Some(v) = r.personal.static_value(name) {
                return Some(v.clone());
            }
        }
        inner
            .bases
            .get(&doc)
            .and_then(|b| b.universal.static_value(name).cloned())
    }

    /// Lists `(id, name)` of the properties visible at a scope, in order.
    pub fn list_properties(
        &self,
        scope: Scope,
        doc: DocumentId,
    ) -> Result<Vec<(PropertyId, String)>> {
        let inner = self.inner.read();
        let list = match scope {
            Scope::Universal => {
                &inner
                    .bases
                    .get(&doc)
                    .ok_or(PlacelessError::NoSuchDocument(doc))?
                    .universal
            }
            Scope::Personal(u) => {
                &inner
                    .refs
                    .get(&(u, doc))
                    .ok_or(PlacelessError::NoSuchReference(u, doc))?
                    .personal
            }
        };
        Ok(list
            .iter()
            .map(|s| (s.id, s.prop.name().to_owned()))
            .collect())
    }

    fn list_mut<'a>(
        &self,
        inner: &'a mut Inner,
        scope: Scope,
        doc: DocumentId,
    ) -> Result<&'a mut crate::property::PropertyList> {
        match scope {
            Scope::Universal => Ok(&mut inner
                .bases
                .get_mut(&doc)
                .ok_or(PlacelessError::NoSuchDocument(doc))?
                .universal),
            Scope::Personal(user) => Ok(&mut inner
                .refs
                .get_mut(&(user, doc))
                .ok_or(PlacelessError::NoSuchReference(user, doc))?
                .personal),
        }
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Assembles the read path for `user` on `doc`.
    ///
    /// Returns the application-side input stream and the [`PathReport`]
    /// carrying the cacheability indicator, the replacement cost, and the
    /// verifiers the cache must run on hits.
    pub fn open_read(
        &self,
        user: UserId,
        doc: DocumentId,
    ) -> Result<(Box<dyn InputStream>, PathReport)> {
        let plan = self.read_plan(user, doc)?;
        let mut report = plan.seed_report(&self.clock);
        let mut stream = plan.provider.open_input(&self.clock)?;
        for index in 0..plan.len() {
            stream = plan.wrap_input_stage(&self.clock, index, &mut report, stream)?;
        }
        Ok((stream, report))
    }

    /// Compiles the read-path [`TransformPlan`] for `user` on `doc`,
    /// charging the same two middleware hops as [`Self::open_read`].
    ///
    /// Caches use this to walk the chain stage-by-stage with
    /// intermediate-result lookups instead of opening an opaque stream.
    pub fn read_plan(&self, user: UserId, doc: DocumentId) -> Result<TransformPlan> {
        // Two middleware hops: the reference's server and the base's.
        self.charge_op(0);
        self.charge_op(0);
        self.compile_plan(user, doc, EventKind::GetInputStream)
    }

    /// Compiles the read-path plan, reusing a previously issued
    /// [`BaseChainLease`] when it is still current.
    ///
    /// With a valid lease the base half of the chain (provider handle,
    /// universal properties, universal statics) comes from the lease and
    /// only **one** middleware hop is charged — the user's reference
    /// server, which tracks base-chain epochs through the same event
    /// machinery that feeds notifiers and validates the lease as part of
    /// admitting the request. The personal half (reference properties and
    /// personal statics) is always read fresh, and transform tokens are
    /// always recaptured at compile time, so per-user state and
    /// external-input epochs can never go stale through a lease.
    ///
    /// A missing, foreign, or out-of-epoch lease falls back to the full
    /// two-hop compile of [`Self::read_plan`] and returns a fresh lease.
    ///
    /// Returns `(plan, lease, reused)` where `reused` says whether the
    /// passed lease was honoured.
    pub fn read_plan_cached(
        &self,
        user: UserId,
        doc: DocumentId,
        lease: Option<&Arc<BaseChainLease>>,
    ) -> Result<(TransformPlan, Arc<BaseChainLease>, bool)> {
        let (provider, base_props, ref_props, snapshot, fresh_lease) = {
            let inner = self.inner.read();
            let base = inner
                .bases
                .get(&doc)
                .ok_or(PlacelessError::NoSuchDocument(doc))?;
            let reference = inner
                .refs
                .get(&(user, doc))
                .ok_or(PlacelessError::NoSuchReference(user, doc))?;
            // Personal values shadow universal ones, so they come first.
            let personal_pairs = reference.personal.static_pairs();
            let ref_props = reference.personal.interested(EventKind::GetInputStream);
            match lease {
                Some(l) if l.doc == doc && l.epoch == base.chain_epoch => {
                    let mut pairs = personal_pairs;
                    pairs.extend(l.universal_pairs.iter().cloned());
                    (
                        l.provider.clone(),
                        l.base_props.clone(),
                        ref_props,
                        PropsSnapshot::from_pairs(pairs),
                        None,
                    )
                }
                _ => {
                    let universal_pairs = base.universal.static_pairs();
                    let base_props = base.universal.interested(EventKind::GetInputStream);
                    let mut pairs = personal_pairs;
                    pairs.extend(universal_pairs.iter().cloned());
                    let fresh = Arc::new(BaseChainLease {
                        doc,
                        epoch: base.chain_epoch,
                        provider: base.provider.clone(),
                        base_props: base_props.clone(),
                        universal_pairs,
                    });
                    (
                        base.provider.clone(),
                        base_props,
                        ref_props,
                        PropsSnapshot::from_pairs(pairs),
                        Some(fresh),
                    )
                }
            }
        };
        let reused = fresh_lease.is_none();
        // One hop (the reference server) on lease reuse; the usual two
        // when the base server had to re-send its half of the chain.
        self.charge_op(0);
        if !reused {
            self.charge_op(0);
        }
        // Tokens are captured outside the space lock, fresh on every
        // compile — exactly as in `compile_plan`.
        let plan = TransformPlan::compile(
            &self.clock,
            doc,
            user,
            provider,
            base_props,
            ref_props,
            snapshot,
        );
        let lease_out = match fresh_lease {
            Some(fresh) => fresh,
            None => Arc::clone(lease.expect("reused implies a lease was passed")),
        };
        Ok((plan, lease_out, reused))
    }

    /// Returns the origin key of `doc`'s bit-provider — the grouping key
    /// the cache's per-provider circuit breakers use.
    pub fn origin_of(&self, doc: DocumentId) -> Option<String> {
        self.inner
            .read()
            .bases
            .get(&doc)
            .map(|base| base.provider.origin_key())
    }

    /// Reads a document to completion through the full property path.
    pub fn read_document(&self, user: UserId, doc: DocumentId) -> Result<(Bytes, PathReport)> {
        let (mut stream, report) = self.open_read(user, doc)?;
        let bytes = read_all(stream.as_mut())?;
        Ok((bytes, report))
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Assembles the write path for `user` on `doc`.
    ///
    /// The returned stream runs the reference's properties first, then the
    /// base's, then the bit-provider sink. Closing it commits the content
    /// and fires `ContentWritten`.
    pub fn open_write(
        self: &Arc<Self>,
        user: UserId,
        doc: DocumentId,
    ) -> Result<Box<dyn OutputStream>> {
        self.charge_op(0);
        self.charge_op(0);

        let plan = self.compile_plan(user, doc, EventKind::GetOutputStream)?;
        if !plan.provider.writable() {
            return Err(PlacelessError::ReadOnly(doc));
        }

        // Innermost: fire ContentWritten after the provider commits.
        let sink = plan.provider.open_output(&self.clock)?;
        self.wrap_write_stack(&plan, user, doc, sink, true)
    }

    /// Wraps `sink` with the write-path property stages of `plan` — base
    /// properties first, then reference properties, each handing its
    /// custom stream outward, so the application ends up writing into the
    /// outermost (reference-side) wrapper. With `notify`, the innermost
    /// layer fires `ContentWritten` after the sink commits.
    fn wrap_write_stack(
        self: &Arc<Self>,
        plan: &TransformPlan,
        user: UserId,
        doc: DocumentId,
        sink: Box<dyn OutputStream>,
        notify: bool,
    ) -> Result<Box<dyn OutputStream>> {
        let mut stream: Box<dyn OutputStream> = if notify {
            let space = Arc::clone(self);
            Box::new(NotifyOnClose {
                inner: Some(sink),
                hook: Some(Box::new(move || {
                    space.dispatch(DocumentEvent::new(EventKind::ContentWritten, doc).by(user))
                })),
            })
        } else {
            sink
        };
        let mut report = PathReport::default();
        for index in 0..plan.len() {
            stream = plan.wrap_output_stage(&self.clock, index, &mut report, stream)?;
        }
        Ok(stream)
    }

    /// Aggregates the write-path cacheability requirements for `user` on
    /// `doc`: the most restrictive vote of every property registered for
    /// `GetOutputStream`, plus the provider's vote. Write-back caches
    /// consult this to decide whether buffered writes must forward
    /// `CacheWrite` events.
    pub fn write_cacheability(
        &self,
        user: UserId,
        doc: DocumentId,
    ) -> Result<crate::cacheability::Cacheability> {
        let plan = self.compile_plan(user, doc, EventKind::GetOutputStream)?;
        Ok(plan.write_cacheability())
    }

    /// Writes a complete document through the full property path.
    pub fn write_document(
        self: &Arc<Self>,
        user: UserId,
        doc: DocumentId,
        data: &[u8],
    ) -> Result<()> {
        let mut stream = self.open_write(user, doc)?;
        write_all(stream.as_mut(), data)?;
        stream.close()
    }

    /// Writes several complete documents as one *grouped origin
    /// operation*, returning one result per entry, in entry order.
    ///
    /// The two middleware hops are charged once for the whole group — the
    /// amortization the write-back cache's batched flush scheduler
    /// exists to collect. Every entry still runs its own full property
    /// chain, and runs of consecutive entries sharing a bit-provider
    /// commit through [`BitProvider::commit_batch`] in a single
    /// repository round-trip when the provider supports it (per-entry
    /// [`BitProvider::open_output`] commits otherwise). Per-entry
    /// semantics are unchanged: a chain or commit failure fails only
    /// that entry, and `ContentWritten` fires for each entry whose
    /// commit succeeded.
    pub fn write_documents(self: &Arc<Self>, writes: &[BatchWrite]) -> Vec<Result<()>> {
        enum Slot {
            Ready(TransformPlan, Bytes),
            Failed(PlacelessError),
        }
        if writes.is_empty() {
            return Vec::new();
        }
        // Two middleware hops cover the whole group.
        self.charge_op(0);
        self.charge_op(0);
        // Run each entry's property chain into a collector first, so the
        // provider sees the post-transform payload exactly as a lone
        // `write_document` would have committed it. Op-carrying entries
        // resolve their content against a batch-local view map: the first
        // op entry for a document reads the origin's current rendition,
        // and every later same-document entry composes on the batch's
        // accumulated view, so entries in one group never clobber each
        // other.
        let mut batch_view: HashMap<DocumentId, Bytes> = HashMap::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(writes.len());
        for w in writes {
            let plan = match self.compile_plan(w.user, w.doc, EventKind::GetOutputStream) {
                Ok(plan) => plan,
                Err(error) => {
                    slots.push(Slot::Failed(error));
                    continue;
                }
            };
            if !plan.provider.writable() {
                slots.push(Slot::Failed(PlacelessError::ReadOnly(w.doc)));
                continue;
            }
            let content = if w.ops.is_empty() {
                w.data.clone()
            } else {
                let base = match batch_view.get(&w.doc) {
                    Some(view) => view.clone(),
                    None => match self.read_document(w.user, w.doc) {
                        Ok((bytes, _)) => bytes,
                        Err(error) => {
                            slots.push(Slot::Failed(error));
                            continue;
                        }
                    },
                };
                crate::op::apply_all(&base, &w.ops)
            };
            batch_view.insert(w.doc, content.clone());
            match self.run_write_chain(&plan, w.user, w.doc, content) {
                Ok(payload) => slots.push(Slot::Ready(plan, payload)),
                Err(error) => slots.push(Slot::Failed(error)),
            }
        }
        let mut results: Vec<Result<()>> = slots.iter().map(|_| Ok(())).collect();
        let mut i = 0;
        while i < slots.len() {
            let Slot::Ready(plan, _) = &slots[i] else {
                if let Slot::Failed(error) = &slots[i] {
                    results[i] = Err(error.clone());
                }
                i += 1;
                continue;
            };
            // Extend the run over consecutive ready entries that share
            // this provider instance; entry order within the run is
            // preserved, so same-document writes land newest-last.
            let provider = Arc::clone(&plan.provider);
            let mut payloads: Vec<Bytes> = Vec::new();
            let mut j = i;
            while j < slots.len() {
                match &slots[j] {
                    Slot::Ready(p, bytes) if Arc::ptr_eq(&p.provider, &provider) => {
                        payloads.push(bytes.clone());
                        j += 1;
                    }
                    _ => break,
                }
            }
            let committed = match provider.commit_batch(&self.clock, &payloads) {
                Some(committed) => committed,
                // The provider cannot batch: fall back to one sink
                // round-trip per payload, each failing independently.
                None => payloads
                    .iter()
                    .map(|bytes| {
                        let mut sink = provider.open_output(&self.clock)?;
                        write_all_bytes(sink.as_mut(), bytes.clone())?;
                        sink.close()
                    })
                    .collect(),
            };
            debug_assert_eq!(committed.len(), payloads.len());
            for offset in 0..payloads.len() {
                let w = &writes[i + offset];
                let result = committed
                    .get(offset)
                    .cloned()
                    .unwrap_or(Err(PlacelessError::StreamClosed));
                results[i + offset] = result.and_then(|()| {
                    // Property ops ride the content commit: attached only
                    // once the bits are durably at the origin, so a failed
                    // entry never half-applies.
                    for op in &w.ops {
                        if let crate::op::DocOp::SetProperty { name, value } = op {
                            self.attach_static(
                                Scope::Personal(w.user),
                                w.doc,
                                name,
                                value.clone(),
                            )?;
                        }
                    }
                    self.dispatch(DocumentEvent::new(EventKind::ContentWritten, w.doc).by(w.user))
                });
            }
            i = j;
        }
        results
    }

    /// Runs one entry's write-path property chain to completion into a
    /// collector, returning the provider-ready payload.
    fn run_write_chain(
        self: &Arc<Self>,
        plan: &TransformPlan,
        user: UserId,
        doc: DocumentId,
        data: Bytes,
    ) -> Result<Bytes> {
        let captured: Arc<Mutex<Option<Bytes>>> = Arc::new(Mutex::new(None));
        let sink = {
            let captured = Arc::clone(&captured);
            Box::new(CollectOutput::new(move |bytes| {
                *captured.lock() = Some(bytes);
                Ok(())
            }))
        };
        let mut stream = self.wrap_write_stack(plan, user, doc, sink, false)?;
        // The chunk path: a chain with no transforming stages hands the
        // caller's refcounted buffer straight to the collector, so
        // identity write chains never copy the payload.
        write_all_bytes(stream.as_mut(), data)?;
        stream.close()?;
        let bytes = captured.lock().take();
        debug_assert!(
            bytes.is_some(),
            "the collector closes before the chain returns"
        );
        Ok(bytes.unwrap_or_default())
    }

    /// The shared chain-assembly helper: snapshots the base and reference
    /// halves of the property chain under the space lock, then compiles
    /// them into a [`TransformPlan`] (base stages first, then the user's
    /// reference stages). `open_read`, `open_write`, `write_cacheability`,
    /// and [`Self::read_plan`] all derive their chains here — the single
    /// place the base-then-reference iteration is spelled out.
    fn compile_plan(
        &self,
        user: UserId,
        doc: DocumentId,
        kind: EventKind,
    ) -> Result<TransformPlan> {
        let (provider, base_props, ref_props, snapshot) = {
            let inner = self.inner.read();
            let base = inner
                .bases
                .get(&doc)
                .ok_or(PlacelessError::NoSuchDocument(doc))?;
            let reference = inner
                .refs
                .get(&(user, doc))
                .ok_or(PlacelessError::NoSuchReference(user, doc))?;
            // Personal values shadow universal ones, so they come first.
            let mut pairs = reference.personal.static_pairs();
            pairs.extend(base.universal.static_pairs());
            (
                base.provider.clone(),
                base.universal.interested(kind),
                reference.personal.interested(kind),
                PropsSnapshot::from_pairs(pairs),
            )
        };
        // Tokens are captured outside the space lock: a transform token may
        // consult external sources, and properties must never run under it.
        Ok(TransformPlan::compile(
            &self.clock,
            doc,
            user,
            provider,
            base_props,
            ref_props,
            snapshot,
        ))
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    /// Dispatches a timer tick to every property registered for `Timer`.
    pub fn timer_tick(self: &Arc<Self>) -> Result<()> {
        let docs = self.documents();
        for doc in docs {
            self.dispatch(DocumentEvent::new(EventKind::Timer, doc))?;
        }
        Ok(())
    }

    /// Forwards a cache-served operation event (the `CacheableWithEvents`
    /// collaboration). The middleware triggers the registered properties
    /// without executing the full path.
    pub fn post_cache_event(
        self: &Arc<Self>,
        user: UserId,
        doc: DocumentId,
        kind: EventKind,
    ) -> Result<()> {
        debug_assert!(
            matches!(kind, EventKind::CacheRead | EventKind::CacheWrite),
            "only cache events may be posted"
        );
        self.charge_op(0);
        self.dispatch(DocumentEvent::new(kind, doc).by(user))
    }

    /// Delivers `event` to every interested property on the base and on the
    /// relevant references, then applies requested follow-ups.
    fn dispatch(self: &Arc<Self>, event: DocumentEvent) -> Result<()> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let targets: Vec<Arc<dyn ActiveProperty>> = {
            let inner = self.inner.read();
            let Some(base) = inner.bases.get(&event.doc) else {
                return Ok(());
            };
            let mut targets = base.universal.interested(event.kind);
            match event.site {
                // A personal-property mutation is visible to the base and
                // to that reference only.
                Some(EventSite::Reference(owner)) => {
                    if let Some(r) = inner.refs.get(&(owner, event.doc)) {
                        targets.extend(r.personal.interested(event.kind));
                    }
                }
                // Base-site and site-less events reach every reference.
                _ => {
                    for ((_, d), r) in inner.refs.iter() {
                        if *d == event.doc {
                            targets.extend(r.personal.interested(event.kind));
                        }
                    }
                }
            }
            targets
        };

        let ctx = EventCtx::new(&self.clock, &self.bus);
        for prop in targets {
            prop.on_event(&ctx, &event).map_err(|e| match e {
                PlacelessError::Property { .. } => e,
                other => PlacelessError::Property {
                    name: prop.name().to_owned(),
                    reason: other.to_string(),
                },
            })?;
        }
        let followups = ctx.take_followups();
        drop(ctx);
        for followup in followups {
            match followup {
                FollowUp::AttachStatic {
                    doc,
                    site,
                    name,
                    value,
                } => {
                    let scope = match site {
                        EventSite::Base => Scope::Universal,
                        EventSite::Reference(u) => Scope::Personal(u),
                    };
                    self.attach_static(scope, doc, &name, value)?;
                }
            }
        }
        Ok(())
    }
}

/// One entry of a grouped origin write; see
/// [`DocumentSpace::write_documents`].
#[derive(Debug, Clone)]
pub struct BatchWrite {
    /// The writing user (selects the reference-side property chain).
    pub user: UserId,
    /// The target document.
    pub doc: DocumentId,
    /// The complete new content, pre-transform. Ignored as content when
    /// `ops` is non-empty (it then documents the writer's own view, for
    /// observability only).
    pub data: Bytes,
    /// Typed operations to apply *server-side* onto the origin's current
    /// content instead of committing `data` verbatim — the op-based merge
    /// path: the effective content is the origin's rendition (as the
    /// writing user sees it) with every content op folded in, so a write
    /// rebased over a concurrent writer preserves both sides' edits.
    /// [`crate::op::DocOp::SetProperty`] ops attach their property after
    /// the content commit succeeds. Empty (the default) commits `data`
    /// exactly as before.
    pub ops: Vec<crate::op::DocOp>,
}

impl BatchWrite {
    /// A plain full-body batch entry (no server-side ops).
    pub fn new(user: UserId, doc: DocumentId, data: Bytes) -> Self {
        Self {
            user,
            doc,
            data,
            ops: Vec::new(),
        }
    }
}

/// Output wrapper that runs a hook after the inner sink commits.
struct NotifyOnClose {
    inner: Option<Box<dyn OutputStream>>,
    hook: Option<Box<dyn FnOnce() -> Result<()> + Send>>,
}

impl OutputStream for NotifyOnClose {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        match self.inner.as_mut() {
            Some(inner) => inner.write(buf),
            None => Err(PlacelessError::StreamClosed),
        }
    }

    fn close(&mut self) -> Result<()> {
        let mut inner = self.inner.take().ok_or(PlacelessError::StreamClosed)?;
        inner.close()?;
        match self.hook.take() {
            Some(hook) => hook(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitprovider::MemoryProvider;
    use crate::cacheability::Cacheability;
    use crate::event::Interests;
    use crate::notifier::Invalidation;
    use crate::property::PathCtx;
    use crate::streams::{TransformingInput, TransformingOutput};
    use parking_lot::Mutex;

    const ALICE: UserId = UserId(1);
    const BOB: UserId = UserId(2);

    /// Uppercases content on the read path.
    struct Upper;
    impl ActiveProperty for Upper {
        fn name(&self) -> &str {
            "upper"
        }
        fn interests(&self) -> Interests {
            Interests::of(&[EventKind::GetInputStream])
        }
        fn execution_cost_micros(&self) -> u64 {
            100
        }
        fn wrap_input(
            &self,
            _ctx: &PathCtx<'_>,
            _report: &mut PathReport,
            inner: Box<dyn InputStream>,
        ) -> Result<Box<dyn InputStream>> {
            Ok(Box::new(TransformingInput::new(
                inner,
                Box::new(|b| Ok(Bytes::from(b.to_ascii_uppercase()))),
            )))
        }
    }

    /// Appends a suffix on the read path, to observe ordering.
    struct Suffix(&'static str);
    impl ActiveProperty for Suffix {
        fn name(&self) -> &str {
            "suffix"
        }
        fn interests(&self) -> Interests {
            Interests::of(&[EventKind::GetInputStream, EventKind::GetOutputStream])
        }
        fn wrap_input(
            &self,
            _ctx: &PathCtx<'_>,
            _report: &mut PathReport,
            inner: Box<dyn InputStream>,
        ) -> Result<Box<dyn InputStream>> {
            let tag = self.0;
            Ok(Box::new(TransformingInput::new(
                inner,
                Box::new(move |b| {
                    let mut v = b.to_vec();
                    v.extend_from_slice(tag.as_bytes());
                    Ok(Bytes::from(v))
                }),
            )))
        }
        fn wrap_output(
            &self,
            _ctx: &PathCtx<'_>,
            _report: &mut PathReport,
            inner: Box<dyn OutputStream>,
        ) -> Result<Box<dyn OutputStream>> {
            let tag = self.0;
            Ok(Box::new(TransformingOutput::new(
                inner,
                Box::new(move |b| {
                    let mut v = b.to_vec();
                    v.extend_from_slice(tag.as_bytes());
                    Ok(Bytes::from(v))
                }),
            )))
        }
    }

    /// Records the events it receives.
    struct Recorder {
        name: String,
        interests: Interests,
        seen: Mutex<Vec<EventKind>>,
    }
    impl Recorder {
        fn new(name: &str, interests: Interests) -> Arc<Self> {
            Arc::new(Self {
                name: name.to_owned(),
                interests,
                seen: Mutex::new(Vec::new()),
            })
        }
    }
    impl ActiveProperty for Recorder {
        fn name(&self) -> &str {
            &self.name
        }
        fn interests(&self) -> Interests {
            self.interests
        }
        fn on_event(&self, _ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
            self.seen.lock().push(event.kind);
            Ok(())
        }
    }

    fn setup(content: &str) -> (Arc<DocumentSpace>, DocumentId) {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
        let provider = MemoryProvider::new("test", content.to_owned(), 0);
        let doc = space.create_document(ALICE, provider);
        (space, doc)
    }

    #[test]
    fn plain_read_returns_raw_content() {
        let (space, doc) = setup("hello");
        let (bytes, report) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "hello");
        assert_eq!(report.cacheability, Cacheability::Unrestricted);
        assert_eq!(report.verifiers.len(), 1, "provider verifier only");
        assert!(report.executed.is_empty());
    }

    #[test]
    fn read_without_reference_fails() {
        let (space, doc) = setup("x");
        assert_eq!(
            space.read_document(BOB, doc).unwrap_err(),
            PlacelessError::NoSuchReference(BOB, doc)
        );
        space.add_reference(BOB, doc).unwrap();
        assert!(space.read_document(BOB, doc).is_ok());
    }

    #[test]
    fn personal_properties_only_affect_their_owner() {
        let (space, doc) = setup("hello");
        space.add_reference(BOB, doc).unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, Arc::new(Upper))
            .unwrap();
        let (alice_view, _) = space.read_document(ALICE, doc).unwrap();
        let (bob_view, _) = space.read_document(BOB, doc).unwrap();
        assert_eq!(alice_view, "HELLO");
        assert_eq!(bob_view, "hello");
    }

    #[test]
    fn universal_properties_affect_everyone() {
        let (space, doc) = setup("hello");
        space.add_reference(BOB, doc).unwrap();
        space
            .attach_active(Scope::Universal, doc, Arc::new(Upper))
            .unwrap();
        let (alice_view, _) = space.read_document(ALICE, doc).unwrap();
        let (bob_view, _) = space.read_document(BOB, doc).unwrap();
        assert_eq!(alice_view, "HELLO");
        assert_eq!(bob_view, "HELLO");
    }

    #[test]
    fn read_path_runs_base_before_reference() {
        let (space, doc) = setup("x");
        space
            .attach_active(Scope::Universal, doc, Arc::new(Suffix("-base")))
            .unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, Arc::new(Suffix("-ref")))
            .unwrap();
        let (bytes, report) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "x-base-ref");
        assert_eq!(report.executed, vec!["suffix", "suffix"]);
    }

    #[test]
    fn write_path_runs_reference_before_base() {
        let (space, doc) = setup("");
        space
            .attach_active(Scope::Universal, doc, Arc::new(Suffix("-base")))
            .unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, Arc::new(Suffix("-ref")))
            .unwrap();
        space.write_document(ALICE, doc, b"w").unwrap();
        // Reference transform applies first, then base: w-ref-base.
        let (bytes, _) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "w-ref-base-base-ref");
    }

    #[test]
    fn write_fires_content_written_everywhere() {
        let (space, doc) = setup("x");
        space.add_reference(BOB, doc).unwrap();
        let base_rec = Recorder::new("base-rec", Interests::of(&[EventKind::ContentWritten]));
        let bob_rec = Recorder::new("bob-rec", Interests::of(&[EventKind::ContentWritten]));
        space
            .attach_active(Scope::Universal, doc, base_rec.clone())
            .unwrap();
        space
            .attach_active(Scope::Personal(BOB), doc, bob_rec.clone())
            .unwrap();
        space.write_document(ALICE, doc, b"new").unwrap();
        assert_eq!(base_rec.seen.lock().len(), 1);
        assert_eq!(
            bob_rec.seen.lock().len(),
            1,
            "other users' notifiers hear about the write"
        );
    }

    #[test]
    fn property_mutations_fire_events() {
        let (space, doc) = setup("x");
        let rec = Recorder::new(
            "rec",
            Interests::of(&[
                EventKind::PropertySet,
                EventKind::PropertyRemoved,
                EventKind::PropertyModified,
                EventKind::PropertyReordered,
            ]),
        );
        space
            .attach_active(Scope::Universal, doc, rec.clone())
            .unwrap();
        // The recorder hears its own attachment; discard that event.
        rec.seen.lock().clear();
        let id = space
            .attach_static(Scope::Universal, doc, "label", "v1")
            .unwrap();
        space
            .modify_property(
                Scope::Universal,
                doc,
                id,
                AttachedProperty::Static {
                    name: "label".into(),
                    value: "v2".into(),
                },
            )
            .unwrap();
        space
            .reorder_property(Scope::Universal, doc, id, 0)
            .unwrap();
        space.remove_property(Scope::Universal, doc, id).unwrap();
        assert_eq!(
            *rec.seen.lock(),
            vec![
                EventKind::PropertySet,
                EventKind::PropertyModified,
                EventKind::PropertyReordered,
                EventKind::PropertyRemoved,
            ]
        );
    }

    #[test]
    fn personal_mutation_not_visible_to_other_references() {
        let (space, doc) = setup("x");
        space.add_reference(BOB, doc).unwrap();
        let bob_rec = Recorder::new("bob-rec", Interests::of(&[EventKind::PropertySet]));
        space
            .attach_active(Scope::Personal(BOB), doc, bob_rec.clone())
            .unwrap();
        bob_rec.seen.lock().clear();
        // Alice attaches a personal property: Bob's recorder must not see it.
        space
            .attach_static(Scope::Personal(ALICE), doc, "private", "yes")
            .unwrap();
        assert!(bob_rec.seen.lock().is_empty());
        // But a universal attach reaches Bob.
        space
            .attach_static(Scope::Universal, doc, "public", "yes")
            .unwrap();
        assert_eq!(bob_rec.seen.lock().len(), 1);
    }

    #[test]
    fn property_value_personal_shadows_universal() {
        let (space, doc) = setup("x");
        space
            .attach_static(Scope::Universal, doc, "lang", "en")
            .unwrap();
        assert_eq!(
            space.property_value(ALICE, doc, "lang").unwrap().as_str(),
            Some("en")
        );
        space
            .attach_static(Scope::Personal(ALICE), doc, "lang", "fr")
            .unwrap();
        assert_eq!(
            space.property_value(ALICE, doc, "lang").unwrap().as_str(),
            Some("fr")
        );
    }

    #[test]
    fn timer_tick_reaches_registered_properties() {
        let (space, doc) = setup("x");
        let rec = Recorder::new("timer-rec", Interests::of(&[EventKind::Timer]));
        space
            .attach_active(Scope::Personal(ALICE), doc, rec.clone())
            .unwrap();
        space.timer_tick().unwrap();
        space.timer_tick().unwrap();
        assert_eq!(*rec.seen.lock(), vec![EventKind::Timer, EventKind::Timer]);
    }

    #[test]
    fn cache_events_are_forwarded() {
        let (space, doc) = setup("x");
        let rec = Recorder::new("audit", Interests::of(&[EventKind::CacheRead]));
        space
            .attach_active(Scope::Universal, doc, rec.clone())
            .unwrap();
        space
            .post_cache_event(ALICE, doc, EventKind::CacheRead)
            .unwrap();
        assert_eq!(rec.seen.lock().len(), 1);
    }

    #[test]
    fn notifier_property_posts_invalidations() {
        struct WriteNotifier;
        impl ActiveProperty for WriteNotifier {
            fn name(&self) -> &str {
                "notify-on-write"
            }
            fn interests(&self) -> Interests {
                Interests::of(&[EventKind::ContentWritten])
            }
            fn on_event(&self, ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
                ctx.bus.post(Invalidation::Document(event.doc));
                Ok(())
            }
        }
        let (space, doc) = setup("x");
        space
            .attach_active(Scope::Universal, doc, Arc::new(WriteNotifier))
            .unwrap();
        space.write_document(ALICE, doc, b"y").unwrap();
        assert_eq!(space.bus().counters().0, 1);
    }

    #[test]
    fn followups_attach_static_properties() {
        struct VersionLinker;
        impl ActiveProperty for VersionLinker {
            fn name(&self) -> &str {
                "version-linker"
            }
            fn interests(&self) -> Interests {
                Interests::of(&[EventKind::ContentWritten])
            }
            fn on_event(&self, ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
                ctx.request(FollowUp::AttachStatic {
                    doc: event.doc,
                    site: EventSite::Base,
                    name: "version:1".into(),
                    value: "snapshot".into(),
                });
                Ok(())
            }
        }
        let (space, doc) = setup("x");
        space
            .attach_active(Scope::Universal, doc, Arc::new(VersionLinker))
            .unwrap();
        space.write_document(ALICE, doc, b"y").unwrap();
        assert!(space.property_value(ALICE, doc, "version:1").is_some());
    }

    #[test]
    fn execution_costs_accumulate_in_report_and_clock() {
        let (space, doc) = setup("abc");
        space
            .attach_active(Scope::Personal(ALICE), doc, Arc::new(Upper))
            .unwrap();
        let t0 = space.clock().now();
        let (_, report) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(report.cost.raw_micros(), 100.0);
        assert!(space.clock().now().since(t0) >= 100);
    }

    #[test]
    fn ops_counter_tracks_middleware_load() {
        let (space, doc) = setup("x");
        let before = space.ops_count();
        let _ = space.read_document(ALICE, doc).unwrap();
        assert!(space.ops_count() > before);
    }

    #[test]
    fn middleware_cost_is_charged() {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::new(500, 0));
        let provider = MemoryProvider::new("t", "x", 0);
        let doc = space.create_document(ALICE, provider);
        let t0 = clock.now();
        let _ = space.read_document(ALICE, doc).unwrap();
        // Two hops at 500 µs each.
        assert!(clock.now().since(t0) >= 1_000);
    }

    #[test]
    fn attach_by_name_uses_registry() {
        let (space, doc) = setup("hello");
        space.registry().register("upper", |_| Ok(Arc::new(Upper)));
        space
            .attach_by_name(Scope::Personal(ALICE), doc, "upper", &Params::new())
            .unwrap();
        let (bytes, _) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "HELLO");
        assert!(space
            .attach_by_name(Scope::Personal(ALICE), doc, "ghost", &Params::new())
            .is_err());
    }

    #[test]
    fn remove_reference_drops_personal_state_and_invalidates() {
        let (space, doc) = setup("x");
        space.add_reference(BOB, doc).unwrap();
        space
            .attach_static(Scope::Personal(BOB), doc, "label", "y")
            .unwrap();
        space.remove_reference(BOB, doc).unwrap();
        assert!(!space.has_reference(BOB, doc));
        assert!(space.read_document(BOB, doc).is_err());
        assert_eq!(space.bus().counters().0, 1, "user-scoped invalidation");
        // Re-adding yields a clean reference.
        space.add_reference(BOB, doc).unwrap();
        assert!(space.property_value(BOB, doc, "label").is_none());
        assert!(space.remove_reference(UserId(9), doc).is_err());
    }

    #[test]
    fn delete_document_removes_everything() {
        let (space, doc) = setup("x");
        space.add_reference(BOB, doc).unwrap();
        space.add_to_collection("drafts", doc).unwrap();
        space.delete_document(doc).unwrap();
        assert!(space.documents().is_empty());
        assert!(space.read_document(ALICE, doc).is_err());
        assert!(space.collection_members("drafts").is_empty());
        assert!(space.delete_document(doc).is_err(), "already gone");
        // A document-wide invalidation reached the bus.
        assert!(space.bus().counters().0 >= 1);
    }

    #[test]
    fn describe_reports_the_full_structure() {
        let (space, doc) = setup("x");
        space.add_reference(BOB, doc).unwrap();
        space
            .attach_active(Scope::Universal, doc, Arc::new(Upper))
            .unwrap();
        space
            .attach_static(Scope::Personal(ALICE), doc, "deadline", "11/30")
            .unwrap();
        space.add_to_collection("drafts", doc).unwrap();
        let description = space.describe(ALICE, doc).unwrap();
        assert_eq!(description.provider, "memory:test");
        assert_eq!(description.users, vec![ALICE, BOB]);
        assert_eq!(description.collections, vec!["drafts"]);
        // Universal: the Upper property plus the collection label.
        assert_eq!(description.universal.len(), 2);
        assert!(description.universal[0].active);
        assert_eq!(description.personal.len(), 1);
        assert_eq!(description.personal[0].name, "deadline");
        assert_eq!(description.personal[0].value.as_deref(), Some("11/30"));
        // Bob has no personal properties.
        let bob_view = space.describe(BOB, doc).unwrap();
        assert!(bob_view.personal.is_empty());
        assert!(space.describe(UserId(9), doc).is_err());
    }

    #[test]
    fn users_and_documents_listing() {
        let (space, doc) = setup("x");
        space.add_reference(BOB, doc).unwrap();
        assert_eq!(space.users_of(doc), vec![ALICE, BOB]);
        assert_eq!(space.documents(), vec![doc]);
        assert!(space.has_reference(ALICE, doc));
        assert!(!space.has_reference(UserId(9), doc));
    }

    #[test]
    fn chain_epoch_bumps_on_universal_mutations_only() {
        let (space, doc) = setup("x");
        assert_eq!(space.chain_epoch(doc), Some(0));

        let id = space
            .attach_static(Scope::Universal, doc, "versioned", true)
            .unwrap();
        assert_eq!(space.chain_epoch(doc), Some(1));

        // Personal mutations never touch the base half.
        let personal = space
            .attach_static(Scope::Personal(ALICE), doc, "color", "red")
            .unwrap();
        space
            .remove_property(Scope::Personal(ALICE), doc, personal)
            .unwrap();
        assert_eq!(space.chain_epoch(doc), Some(1));

        space
            .modify_property(
                Scope::Universal,
                doc,
                id,
                AttachedProperty::Static {
                    name: "versioned".into(),
                    value: false.into(),
                },
            )
            .unwrap();
        assert_eq!(space.chain_epoch(doc), Some(2));

        space
            .attach_active(Scope::Universal, doc, Arc::new(Upper))
            .unwrap();
        assert_eq!(space.chain_epoch(doc), Some(3));
        space
            .reorder_property(Scope::Universal, doc, id, 1)
            .unwrap();
        assert_eq!(space.chain_epoch(doc), Some(4));
        space.remove_property(Scope::Universal, doc, id).unwrap();
        assert_eq!(space.chain_epoch(doc), Some(5));
    }

    #[test]
    fn read_plan_cached_reuses_the_base_half_and_saves_a_hop() {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::new(300, 0));
        let provider = MemoryProvider::new("test", "hello", 0);
        let doc = space.create_document(ALICE, provider);
        space
            .attach_active(Scope::Universal, doc, Arc::new(Suffix("-base")))
            .unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, Arc::new(Upper))
            .unwrap();

        let t0 = clock.now();
        let (fresh_plan, lease, reused) = space.read_plan_cached(ALICE, doc, None).unwrap();
        assert!(!reused);
        assert_eq!(clock.now().since(t0), 600, "cold compile costs two hops");

        let t1 = clock.now();
        let (cached_plan, lease2, reused) =
            space.read_plan_cached(ALICE, doc, Some(&lease)).unwrap();
        assert!(reused);
        assert_eq!(clock.now().since(t1), 300, "lease reuse costs one hop");
        assert!(
            Arc::ptr_eq(&lease, &lease2),
            "valid lease is returned as-is"
        );

        // Same chain either way: same stage count and same signatures
        // rooted at the same digest.
        assert_eq!(fresh_plan.len(), cached_plan.len());
        let root = crate::digest::md5(b"hello");
        for index in 0..fresh_plan.len() {
            assert_eq!(
                fresh_plan.stage_signature(index, root),
                cached_plan.stage_signature(index, root)
            );
        }
    }

    #[test]
    fn stale_chain_lease_falls_back_to_a_fresh_compile() {
        let (space, doc) = setup("hello");
        space
            .attach_active(Scope::Universal, doc, Arc::new(Suffix("-v1")))
            .unwrap();
        let (plan, lease, _) = space.read_plan_cached(ALICE, doc, None).unwrap();
        assert_eq!(plan.len(), 1);

        // A universal mutation bumps the epoch under the lease.
        space
            .attach_active(Scope::Universal, doc, Arc::new(Upper))
            .unwrap();
        let (plan, lease2, reused) = space.read_plan_cached(ALICE, doc, Some(&lease)).unwrap();
        assert!(!reused, "stale lease must not be reused");
        assert_eq!(plan.len(), 2, "fresh compile sees the new base stage");
        assert_eq!(lease2.epoch, space.chain_epoch(doc).unwrap());

        let (bytes, _) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "HELLO-V1");
    }

    #[test]
    fn chain_lease_reuse_still_sees_fresh_personal_properties() {
        let (space, doc) = setup("hello");
        space
            .attach_active(Scope::Universal, doc, Arc::new(Suffix("-base")))
            .unwrap();
        let (plan, lease, _) = space.read_plan_cached(ALICE, doc, None).unwrap();
        assert_eq!(plan.len(), 1);

        // Personal attach leaves the lease valid, yet the compiled plan
        // must include the new reference stage: only the base half is
        // cached.
        space
            .attach_active(Scope::Personal(ALICE), doc, Arc::new(Upper))
            .unwrap();
        let (plan, _, reused) = space.read_plan_cached(ALICE, doc, Some(&lease)).unwrap();
        assert!(reused);
        assert_eq!(plan.len(), 2, "personal half recompiled fresh");
    }
}
