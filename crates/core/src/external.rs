//! Information sources *outside Placeless control* that active properties
//! depend on.
//!
//! The paper's fourth invalidation cause: "Information used by active
//! properties changes. Active properties may rely on information that is
//! completely external to the Placeless system, for example current time,
//! data stored in databases and other on-line sources." An
//! [`ExternalSource`] exposes an *epoch* counter that bumps on every change,
//! so verifiers can cheaply detect staleness without re-reading the value,
//! and a current value for properties that embed it in content.

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

/// A named external information source with change detection.
pub trait ExternalSource: Send + Sync {
    /// Returns the source's name (e.g. `"stock:XRX"`).
    fn name(&self) -> &str;

    /// Returns a counter that increases every time the value changes.
    fn epoch(&self) -> u64;

    /// Returns the current value.
    fn read(&self) -> Bytes;
}

/// A simple in-memory [`ExternalSource`] that can be mutated by tests,
/// benches, and repository simulations.
///
/// # Examples
///
/// ```
/// use placeless_core::external::{ExternalSource, SimpleExternal};
///
/// let src = SimpleExternal::new("stock:XRX", "42.50");
/// let e0 = src.epoch();
/// src.set("41.75");
/// assert!(src.epoch() > e0);
/// assert_eq!(&src.read()[..], b"41.75");
/// ```
pub struct SimpleExternal {
    name: String,
    state: Mutex<(u64, Bytes)>,
}

impl SimpleExternal {
    /// Creates a source with an initial value at epoch zero.
    pub fn new(name: &str, value: impl Into<Bytes>) -> Arc<Self> {
        Arc::new(Self {
            name: name.to_owned(),
            state: Mutex::new((0, value.into())),
        })
    }

    /// Replaces the value, bumping the epoch.
    pub fn set(&self, value: impl Into<Bytes>) {
        let mut state = self.state.lock();
        state.0 += 1;
        state.1 = value.into();
    }

    /// Bumps the epoch without changing the value (models a refresh that
    /// still counts as "changed", e.g. a database commit).
    pub fn touch(&self) {
        self.state.lock().0 += 1;
    }
}

impl ExternalSource for SimpleExternal {
    fn name(&self) -> &str {
        &self.name
    }

    fn epoch(&self) -> u64 {
        self.state.lock().0
    }

    fn read(&self) -> Bytes {
        self.state.lock().1.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_bumps_epoch_and_replaces_value() {
        let src = SimpleExternal::new("clock", "9:00");
        assert_eq!(src.epoch(), 0);
        assert_eq!(&src.read()[..], b"9:00");
        src.set("9:01");
        assert_eq!(src.epoch(), 1);
        assert_eq!(&src.read()[..], b"9:01");
    }

    #[test]
    fn touch_bumps_epoch_only() {
        let src = SimpleExternal::new("db", "row");
        src.touch();
        assert_eq!(src.epoch(), 1);
        assert_eq!(&src.read()[..], b"row");
    }

    #[test]
    fn usable_as_trait_object() {
        let src: Arc<dyn ExternalSource> = SimpleExternal::new("s", "v");
        assert_eq!(src.name(), "s");
        assert_eq!(src.epoch(), 0);
    }
}
