//! The three-level cacheability indicator.
//!
//! Every active property on the read path votes on how the resulting
//! content may be cached; the votes aggregate to the *most restrictive*
//! value (the meet of a three-element chain lattice), exactly as §3 "Cache
//! Management" describes:
//!
//! * [`Cacheability::Uncacheable`] — the content must not be cached at all
//!   (e.g. a live video bit-provider, or a transform that differs on every
//!   read).
//! * [`Cacheability::CacheableWithEvents`] — the cache may serve the bytes,
//!   but must forward the operation event so registered properties (e.g. a
//!   read-audit trail) still fire; the middleware triggers the properties
//!   without re-executing the full path.
//! * [`Cacheability::Unrestricted`] — normal caching.

/// How a document's content may be cached, ordered from most to least
/// restrictive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cacheability {
    /// Content must not be cached.
    Uncacheable,
    /// Content may be cached, but operation events must be forwarded to the
    /// middleware so interested properties still trigger.
    CacheableWithEvents,
    /// Content may be cached with no restrictions.
    Unrestricted,
}

impl Cacheability {
    /// Combines two votes, keeping the most restrictive.
    ///
    /// # Examples
    ///
    /// ```
    /// use placeless_core::cacheability::Cacheability::*;
    ///
    /// assert_eq!(Unrestricted.combine(CacheableWithEvents), CacheableWithEvents);
    /// assert_eq!(CacheableWithEvents.combine(Uncacheable), Uncacheable);
    /// ```
    pub fn combine(self, other: Cacheability) -> Cacheability {
        self.min(other)
    }

    /// Returns `true` if a cache may store content under this indicator.
    pub fn allows_caching(self) -> bool {
        self != Cacheability::Uncacheable
    }

    /// Returns `true` if the cache must forward operation events.
    pub fn requires_event_forwarding(self) -> bool {
        self == Cacheability::CacheableWithEvents
    }
}

impl Default for Cacheability {
    /// The default vote is [`Cacheability::Unrestricted`]: a property that
    /// says nothing places no restriction.
    fn default() -> Self {
        Cacheability::Unrestricted
    }
}

/// Aggregates an iterator of votes to the most restrictive value.
///
/// An empty iterator yields [`Cacheability::Unrestricted`].
pub fn aggregate<I: IntoIterator<Item = Cacheability>>(votes: I) -> Cacheability {
    votes
        .into_iter()
        .fold(Cacheability::Unrestricted, Cacheability::combine)
}

#[cfg(test)]
mod tests {
    use super::Cacheability::*;
    use super::*;

    const ALL: [Cacheability; 3] = [Uncacheable, CacheableWithEvents, Unrestricted];

    #[test]
    fn combine_picks_most_restrictive() {
        assert_eq!(Unrestricted.combine(Unrestricted), Unrestricted);
        assert_eq!(
            Unrestricted.combine(CacheableWithEvents),
            CacheableWithEvents
        );
        assert_eq!(Unrestricted.combine(Uncacheable), Uncacheable);
        assert_eq!(CacheableWithEvents.combine(Uncacheable), Uncacheable);
    }

    #[test]
    fn combine_is_commutative_and_associative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.combine(b), b.combine(a));
                for c in ALL {
                    assert_eq!(a.combine(b).combine(c), a.combine(b.combine(c)));
                }
            }
        }
    }

    #[test]
    fn combine_is_idempotent_with_unrestricted_identity() {
        for a in ALL {
            assert_eq!(a.combine(a), a);
            assert_eq!(a.combine(Unrestricted), a);
        }
    }

    #[test]
    fn aggregate_empty_is_unrestricted() {
        assert_eq!(aggregate(std::iter::empty()), Unrestricted);
    }

    #[test]
    fn aggregate_takes_minimum() {
        assert_eq!(
            aggregate([Unrestricted, CacheableWithEvents, Unrestricted]),
            CacheableWithEvents
        );
        assert_eq!(aggregate([CacheableWithEvents, Uncacheable]), Uncacheable);
    }

    #[test]
    fn predicates() {
        assert!(!Uncacheable.allows_caching());
        assert!(CacheableWithEvents.allows_caching());
        assert!(Unrestricted.allows_caching());
        assert!(CacheableWithEvents.requires_event_forwarding());
        assert!(!Unrestricted.requires_event_forwarding());
        assert!(!Uncacheable.requires_event_forwarding());
    }
}
