//! Verifiers: validity checks shipped to the cache with the content.
//!
//! "Verifiers are pieces of code returned to the cache along with the
//! document's content. They are executed each time an entry is retrieved
//! from the cache and can determine whether the entry is still valid at that
//! time. In particular, verifiers can check for conditions that may change
//! outside of Placeless control."
//!
//! Verifiers here are trait objects created by bit-providers and active
//! properties as the read path executes; the cache runs them on every hit
//! and charges their execution cost against the clock (verifier execution
//! trades cache consistency against hit latency — the trade-off the bench
//! harness measures).

use crate::external::ExternalSource;
use bytes::Bytes;
use placeless_simenv::{Instant, VirtualClock};
use std::sync::Arc;

/// The outcome of running a verifier on a cache hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validity {
    /// The cached entry may be served.
    Valid,
    /// The cached entry is stale and must be discarded.
    Invalid,
    /// The cached entry should be *replaced in place* with these bytes and
    /// then served — the paper's "or even modify these values as needed"
    /// case for heavily customized documents like portfolio pages.
    Replace(Bytes),
    /// The check could not be performed (origin unreachable, probe timed
    /// out): freshness is *unknown*, not refuted. The cache decides
    /// whether its staleness bound permits serving the entry anyway.
    Unverifiable,
}

/// A validity check executed by the cache on each hit.
pub trait Verifier: Send + Sync {
    /// Runs the check at the current virtual time.
    fn check(&self, clock: &VirtualClock) -> Validity;

    /// Returns the simulated cost of running this check, in microseconds.
    /// The cache charges this on every hit.
    fn cost_micros(&self) -> u64 {
        5
    }

    /// Returns a short human-readable description.
    fn describe(&self) -> String;
}

/// A verifier that expires at a fixed virtual time, as an HTTP TTL does.
pub struct TtlVerifier {
    expires_at: Instant,
}

impl TtlVerifier {
    /// Creates a verifier valid until `expires_at`.
    pub fn until(expires_at: Instant) -> Box<dyn Verifier> {
        Box::new(Self { expires_at })
    }

    /// Creates a verifier valid for `ttl_micros` from `now`.
    pub fn for_ttl(now: Instant, ttl_micros: u64) -> Box<dyn Verifier> {
        Self::until(now.plus(ttl_micros))
    }
}

impl Verifier for TtlVerifier {
    fn check(&self, clock: &VirtualClock) -> Validity {
        if clock.now() <= self.expires_at {
            Validity::Valid
        } else {
            Validity::Invalid
        }
    }

    fn cost_micros(&self) -> u64 {
        1
    }

    fn describe(&self) -> String {
        format!("ttl(expires@{}µs)", self.expires_at.as_micros())
    }
}

/// A verifier that invalidates when an [`ExternalSource`]'s epoch moves past
/// the epoch observed when the entry was filled.
pub struct EpochVerifier {
    source: Arc<dyn ExternalSource>,
    seen: u64,
    cost: u64,
}

impl EpochVerifier {
    /// Creates a verifier pinned to the source's current epoch.
    pub fn pinned(source: Arc<dyn ExternalSource>) -> Box<dyn Verifier> {
        let seen = source.epoch();
        Box::new(Self {
            source,
            seen,
            cost: 20,
        })
    }

    /// Creates a pinned verifier with an explicit probe cost (e.g. a remote
    /// database poll is pricier than a local mtime check).
    pub fn pinned_with_cost(source: Arc<dyn ExternalSource>, cost: u64) -> Box<dyn Verifier> {
        let seen = source.epoch();
        Box::new(Self { source, seen, cost })
    }
}

impl Verifier for EpochVerifier {
    fn check(&self, _clock: &VirtualClock) -> Validity {
        if self.source.epoch() == self.seen {
            Validity::Valid
        } else {
            Validity::Invalid
        }
    }

    fn cost_micros(&self) -> u64 {
        self.cost
    }

    fn describe(&self) -> String {
        format!("epoch({}@{})", self.source.name(), self.seen)
    }
}

/// The predicate a [`ClosureVerifier`] runs on each hit.
type CheckFn = Box<dyn Fn(&VirtualClock) -> Validity + Send + Sync>;

/// A verifier built from a closure, for document- or property-specific
/// checks (e.g. "invalidate only if the quote moved more than 1 %").
pub struct ClosureVerifier {
    check: CheckFn,
    cost: u64,
    label: String,
}

impl ClosureVerifier {
    /// Creates a verifier from `check` with the given probe cost.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(
        label: &str,
        cost: u64,
        check: impl Fn(&VirtualClock) -> Validity + Send + Sync + 'static,
    ) -> Box<dyn Verifier> {
        Box::new(Self {
            check: Box::new(check),
            cost,
            label: label.to_owned(),
        })
    }
}

impl Verifier for ClosureVerifier {
    fn check(&self, clock: &VirtualClock) -> Validity {
        (self.check)(clock)
    }

    fn cost_micros(&self) -> u64 {
        self.cost
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

/// Runs a slice of verifiers in order, combining their verdicts.
///
/// The first [`Validity::Invalid`] wins; a [`Validity::Replace`] is carried
/// forward but can still be overridden to `Invalid` by a later verifier
/// (replacement content must itself pass the remaining checks). A
/// [`Validity::Unverifiable`] also overrides any carried `Replace` or
/// `Valid` — if one probe could not reach its origin, the combined
/// freshness is unknown — but a later definite `Invalid` still wins.
/// Returns the total probe cost alongside the verdict so the caller can
/// charge it.
pub fn run_all(verifiers: &[Box<dyn Verifier>], clock: &VirtualClock) -> (Validity, u64) {
    let mut verdict = Validity::Valid;
    let mut cost = 0;
    for v in verifiers {
        cost += v.cost_micros();
        match v.check(clock) {
            Validity::Valid => {}
            Validity::Invalid => return (Validity::Invalid, cost),
            Validity::Replace(bytes) => {
                if verdict != Validity::Unverifiable {
                    verdict = Validity::Replace(bytes);
                }
            }
            Validity::Unverifiable => verdict = Validity::Unverifiable,
        }
    }
    (verdict, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::external::SimpleExternal;

    #[test]
    fn ttl_valid_until_deadline() {
        let clock = VirtualClock::new();
        let v = TtlVerifier::for_ttl(clock.now(), 1_000);
        assert_eq!(v.check(&clock), Validity::Valid);
        clock.advance(1_000);
        assert_eq!(v.check(&clock), Validity::Valid, "inclusive deadline");
        clock.advance(1);
        assert_eq!(v.check(&clock), Validity::Invalid);
    }

    #[test]
    fn epoch_verifier_tracks_source_changes() {
        let clock = VirtualClock::new();
        let src = SimpleExternal::new("quotes", "100");
        let v = EpochVerifier::pinned(src.clone());
        assert_eq!(v.check(&clock), Validity::Valid);
        src.set("101");
        assert_eq!(v.check(&clock), Validity::Invalid);
    }

    #[test]
    fn epoch_verifier_pins_at_creation_time() {
        let clock = VirtualClock::new();
        let src = SimpleExternal::new("quotes", "100");
        src.set("101");
        let v = EpochVerifier::pinned(src.clone());
        assert_eq!(v.check(&clock), Validity::Valid, "created after the change");
    }

    #[test]
    fn closure_verifier_runs_arbitrary_predicates() {
        let clock = VirtualClock::new();
        let v = ClosureVerifier::new("after-5ms", 3, |c| {
            if c.now().as_micros() < 5_000 {
                Validity::Valid
            } else {
                Validity::Invalid
            }
        });
        assert_eq!(v.check(&clock), Validity::Valid);
        assert_eq!(v.cost_micros(), 3);
        clock.advance(6_000);
        assert_eq!(v.check(&clock), Validity::Invalid);
    }

    #[test]
    fn run_all_empty_is_valid_and_free() {
        let clock = VirtualClock::new();
        assert_eq!(run_all(&[], &clock), (Validity::Valid, 0));
    }

    #[test]
    fn run_all_first_invalid_short_circuits() {
        let clock = VirtualClock::new();
        let vs: Vec<Box<dyn Verifier>> = vec![
            ClosureVerifier::new("a", 10, |_| Validity::Valid),
            ClosureVerifier::new("b", 10, |_| Validity::Invalid),
            ClosureVerifier::new("c", 10, |_| panic!("must not run")),
        ];
        let (verdict, cost) = run_all(&vs, &clock);
        assert_eq!(verdict, Validity::Invalid);
        assert_eq!(cost, 20, "short-circuits after the invalid check");
    }

    #[test]
    fn run_all_accumulates_costs_when_valid() {
        let clock = VirtualClock::new();
        let vs: Vec<Box<dyn Verifier>> = vec![
            ClosureVerifier::new("a", 7, |_| Validity::Valid),
            ClosureVerifier::new("b", 11, |_| Validity::Valid),
        ];
        assert_eq!(run_all(&vs, &clock), (Validity::Valid, 18));
    }

    #[test]
    fn run_all_replace_is_carried_but_overridable() {
        let clock = VirtualClock::new();
        let vs: Vec<Box<dyn Verifier>> = vec![
            ClosureVerifier::new("fresh", 1, |_| {
                Validity::Replace(Bytes::from_static(b"new quote"))
            }),
            ClosureVerifier::new("ok", 1, |_| Validity::Valid),
        ];
        let (verdict, _) = run_all(&vs, &clock);
        assert_eq!(verdict, Validity::Replace(Bytes::from_static(b"new quote")));

        let vs: Vec<Box<dyn Verifier>> = vec![
            ClosureVerifier::new("fresh", 1, |_| {
                Validity::Replace(Bytes::from_static(b"new quote"))
            }),
            ClosureVerifier::new("dead", 1, |_| Validity::Invalid),
        ];
        let (verdict, _) = run_all(&vs, &clock);
        assert_eq!(
            verdict,
            Validity::Invalid,
            "later invalid overrides replace"
        );
    }

    #[test]
    fn run_all_unverifiable_dominates_valid_and_replace() {
        let clock = VirtualClock::new();
        let vs: Vec<Box<dyn Verifier>> = vec![
            ClosureVerifier::new("down", 1, |_| Validity::Unverifiable),
            ClosureVerifier::new("ok", 1, |_| Validity::Valid),
        ];
        assert_eq!(run_all(&vs, &clock).0, Validity::Unverifiable);

        let vs: Vec<Box<dyn Verifier>> = vec![
            ClosureVerifier::new("fresh", 1, |_| {
                Validity::Replace(Bytes::from_static(b"new"))
            }),
            ClosureVerifier::new("down", 1, |_| Validity::Unverifiable),
        ];
        assert_eq!(
            run_all(&vs, &clock).0,
            Validity::Unverifiable,
            "replacement bytes cannot be trusted if a later probe is blind"
        );

        let vs: Vec<Box<dyn Verifier>> = vec![
            ClosureVerifier::new("down", 1, |_| Validity::Unverifiable),
            ClosureVerifier::new("dead", 1, |_| Validity::Invalid),
        ];
        assert_eq!(
            run_all(&vs, &clock).0,
            Validity::Invalid,
            "a definite rejection beats an unknown"
        );
    }

    #[test]
    fn describe_is_informative() {
        let clock = VirtualClock::new();
        let src = SimpleExternal::new("db", "x");
        assert!(TtlVerifier::for_ttl(clock.now(), 10)
            .describe()
            .contains("ttl"));
        assert!(EpochVerifier::pinned(src).describe().contains("db"));
    }
}
