//! Bit-providers: the special active property that links a base document to
//! the actual content in its repository.
//!
//! Every base document carries exactly one bit-provider. On the read path it
//! opens the raw input stream from the repository (charging the fetch
//! latency against the virtual clock); on the write path it opens the sink
//! that commits new content. It also initialises the replacement cost with
//! the repository fetch cost and, most importantly for caching, returns a
//! *verifier* appropriate to its repository's consistency mechanism (mtime
//! polling for files, TTL for web pages, nothing for live feeds).

use crate::cacheability::Cacheability;
use crate::error::Result;
use crate::streams::{CollectOutput, InputStream, MemoryInput, OutputStream};
use crate::verifier::{ClosureVerifier, Validity, Verifier};
use bytes::Bytes;
use parking_lot::Mutex;
use placeless_simenv::VirtualClock;
use std::sync::Arc;

/// The repository link of a base document.
pub trait BitProvider: Send + Sync {
    /// Returns a short description of the provider and its repository.
    fn describe(&self) -> String;

    /// Returns a key identifying the provider's *origin* (the repository
    /// or server behind it), shared by every document served from that
    /// origin. The cache's per-provider circuit breakers group failures by
    /// this key, so one dead origin trips one breaker rather than one per
    /// document. Defaults to [`BitProvider::describe`] (per-document).
    fn origin_key(&self) -> String {
        self.describe()
    }

    /// Opens the raw content stream, charging fetch latency to the clock.
    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>>;

    /// Opens the commit sink; implementations charge store latency when the
    /// sink is closed.
    fn open_output(&self, clock: &VirtualClock) -> Result<Box<dyn OutputStream>>;

    /// Commits several already-transformed payloads in one grouped
    /// repository round-trip, returning one result per payload (in
    /// order). `None` — the default — means the provider cannot batch;
    /// callers then fall back to one [`BitProvider::open_output`] commit
    /// per payload, which preserves per-entry fault semantics exactly.
    ///
    /// Implementations must keep failures *per payload*: a fault that
    /// affects the whole round-trip (an unreachable origin) fails every
    /// payload, but one payload's rejection must not poison its
    /// neighbours.
    fn commit_batch(&self, clock: &VirtualClock, payloads: &[Bytes]) -> Option<Vec<Result<()>>> {
        let _ = (clock, payloads);
        None
    }

    /// Returns a verifier implementing this repository's consistency
    /// mechanism, or `None` if the repository offers none.
    fn make_verifier(&self, clock: &VirtualClock) -> Option<Box<dyn Verifier>>;

    /// Returns the cost of (re)fetching the content, used to initialise the
    /// document's replacement cost.
    fn fetch_cost_micros(&self) -> u64;

    /// Returns the current content length, when cheaply known.
    fn content_len_hint(&self) -> Option<u64> {
        None
    }

    /// Returns `true` if the provider accepts writes.
    fn writable(&self) -> bool {
        true
    }

    /// Returns the provider's cacheability vote.
    ///
    /// The bit-provider is itself an active property and participates in
    /// the indicator aggregation; a live-video provider whose content
    /// changes on every read votes [`Cacheability::Uncacheable`].
    fn cacheability_vote(&self) -> Cacheability {
        Cacheability::Unrestricted
    }
}

/// Shared `(epoch, content)` cell backing [`MemoryProvider`].
type VersionedCell = Arc<Mutex<(u64, Bytes)>>;

/// An in-memory bit-provider used by tests and as the simplest repository.
///
/// Content changes through [`BitProvider::open_output`] model updates
/// *through* Placeless; [`MemoryProvider::set_out_of_band`] models updates
/// the middleware cannot see (the paper's dual update model). An epoch
/// counter backs the mtime-style verifier.
pub struct MemoryProvider {
    label: String,
    state: VersionedCell,
    fetch_cost: u64,
}

impl MemoryProvider {
    /// Creates a provider holding `content` with a given simulated fetch
    /// cost in microseconds.
    pub fn new(label: &str, content: impl Into<Bytes>, fetch_cost: u64) -> Arc<Self> {
        Arc::new(Self {
            label: label.to_owned(),
            state: Arc::new(Mutex::new((0, content.into()))),
            fetch_cost,
        })
    }

    /// Returns the current content.
    pub fn content(&self) -> Bytes {
        self.state.lock().1.clone()
    }

    /// Replaces the content *outside* Placeless control: no events fire and
    /// no notifiers run — only the provider's verifier can catch it.
    pub fn set_out_of_band(&self, content: impl Into<Bytes>) {
        let mut state = self.state.lock();
        state.0 += 1;
        state.1 = content.into();
    }

    /// Returns the provider's modification epoch (its "mtime").
    pub fn epoch(&self) -> u64 {
        self.state.lock().0
    }
}

impl BitProvider for MemoryProvider {
    fn describe(&self) -> String {
        format!("memory:{}", self.label)
    }

    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        clock.advance(self.fetch_cost);
        Ok(Box::new(MemoryInput::new(self.content())))
    }

    fn open_output(&self, clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        let clock = clock.clone();
        let cost = self.fetch_cost;
        let state = self.state.clone();
        // The sink buffers the new content and commits it (bumping the
        // epoch) on close, charging the store latency then.
        Ok(Box::new(CollectOutput::new(move |bytes| {
            clock.advance(cost);
            let mut state = state.lock();
            state.0 += 1;
            state.1 = bytes;
            Ok(())
        })))
    }

    fn commit_batch(&self, clock: &VirtualClock, payloads: &[Bytes]) -> Option<Vec<Result<()>>> {
        // One grouped store round-trip: the latency is charged once for
        // the whole batch, then each payload commits (bumping the epoch)
        // in order, so the last payload is the surviving content.
        clock.advance(self.fetch_cost);
        let mut state = self.state.lock();
        Some(
            payloads
                .iter()
                .map(|bytes| {
                    state.0 += 1;
                    state.1 = bytes.clone();
                    Ok(())
                })
                .collect(),
        )
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        // Poll the modification epoch, like polling a file's mtime.
        let seen = self.epoch();
        let state = self.state.clone();
        Some(ClosureVerifier::new(
            &format!("mtime({})", self.label),
            2,
            move |_| {
                if state.lock().0 == seen {
                    Validity::Valid
                } else {
                    Validity::Invalid
                }
            },
        ))
    }

    fn fetch_cost_micros(&self) -> u64 {
        self.fetch_cost
    }

    fn content_len_hint(&self) -> Option<u64> {
        Some(self.state.lock().1.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::{read_all, write_all};

    #[test]
    fn read_charges_fetch_cost() {
        let clock = VirtualClock::new();
        let provider = MemoryProvider::new("t", "hello", 1_234);
        let mut stream = provider.open_input(&clock).unwrap();
        assert_eq!(clock.now().as_micros(), 1_234);
        assert_eq!(read_all(stream.as_mut()).unwrap(), "hello");
    }

    #[test]
    fn write_commits_on_close_and_charges() {
        let clock = VirtualClock::new();
        let provider = MemoryProvider::new("t", "old", 100);
        let mut sink = provider.open_output(&clock).unwrap();
        write_all(sink.as_mut(), b"new content").unwrap();
        assert_eq!(provider.content(), "old", "not committed before close");
        assert_eq!(clock.now().as_micros(), 0, "store latency charged at close");
        sink.close().unwrap();
        assert_eq!(provider.content(), "new content");
        assert_eq!(clock.now().as_micros(), 100);
    }

    #[test]
    fn batch_commit_charges_cost_once_and_applies_in_order() {
        let clock = VirtualClock::new();
        let provider = MemoryProvider::new("t", "old", 100);
        let payloads = [Bytes::from_static(b"v1"), Bytes::from_static(b"v2")];
        let results = provider.commit_batch(&clock, &payloads).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(clock.now().as_micros(), 100, "one round-trip for the batch");
        assert_eq!(provider.content(), "v2", "last payload wins");
        assert_eq!(provider.epoch(), 2, "each payload bumps the epoch");
    }

    #[test]
    fn verifier_detects_out_of_band_changes() {
        let clock = VirtualClock::new();
        let provider = MemoryProvider::new("t", "v1", 10);
        let verifier = provider.make_verifier(&clock).unwrap();
        assert_eq!(verifier.check(&clock), Validity::Valid);
        provider.set_out_of_band("v2");
        assert_eq!(verifier.check(&clock), Validity::Invalid);
    }

    #[test]
    fn verifier_detects_in_band_writes_too() {
        let clock = VirtualClock::new();
        let provider = MemoryProvider::new("t", "v1", 10);
        let verifier = provider.make_verifier(&clock).unwrap();
        let mut sink = provider.open_output(&clock).unwrap();
        write_all(sink.as_mut(), b"v2").unwrap();
        sink.close().unwrap();
        assert_eq!(verifier.check(&clock), Validity::Invalid);
    }

    #[test]
    fn fresh_verifier_after_change_is_valid() {
        let clock = VirtualClock::new();
        let provider = MemoryProvider::new("t", "v1", 10);
        provider.set_out_of_band("v2");
        let verifier = provider.make_verifier(&clock).unwrap();
        assert_eq!(verifier.check(&clock), Validity::Valid);
    }

    #[test]
    fn len_hint_tracks_content() {
        let provider = MemoryProvider::new("t", "12345", 0);
        assert_eq!(provider.content_len_hint(), Some(5));
        provider.set_out_of_band("123");
        assert_eq!(provider.content_len_hint(), Some(3));
    }

    #[test]
    fn providers_are_independent() {
        let clock = VirtualClock::new();
        let a = MemoryProvider::new("a", "aaa", 0);
        let b = MemoryProvider::new("b", "bbb", 0);
        let mut sink_a = a.open_output(&clock).unwrap();
        write_all(sink_a.as_mut(), b"AAA").unwrap();
        sink_a.close().unwrap();
        assert_eq!(a.content(), "AAA");
        assert_eq!(b.content(), "bbb", "writing to a must not touch b");
    }
}
