//! Typed document operations — the unit of multi-writer merge.
//!
//! A [`DocOp`] describes *what a writer did* rather than the bytes that
//! resulted, so a journal replayed after a crash (or a flush racing a
//! concurrent writer through another cache) can re-apply the writer's
//! intent on top of whatever the origin holds *now* instead of blindly
//! clobbering it with a stale full-body snapshot.
//!
//! Ops are deliberately byte-oriented: the middleware treats content as an
//! opaque byte stream (properties do the interpretation), so the merge
//! substrate works at the same level. `Replace` is the unmergeable
//! fallback — a full-body write carries no information about which part of
//! the document the writer meant to change, so a conflicting `Replace`
//! still drops to the binary keep-mine/keep-theirs hooks.

use crate::content::PropertyValue;
use bytes::Bytes;

/// One typed edit to a document's content (or its property set).
#[derive(Debug, Clone, PartialEq)]
pub enum DocOp {
    /// Replace the entire body. Fallback with full-snapshot semantics;
    /// never rebasable onto concurrent edits.
    Replace(Bytes),
    /// Append bytes to the end of the document.
    Append(Bytes),
    /// Replace the byte range `start..end` (offsets into the base the op
    /// was authored against; clamped to the actual base on application).
    ReplaceRange {
        /// First byte replaced.
        start: u64,
        /// One past the last byte replaced.
        end: u64,
        /// Replacement bytes (may be empty ⇒ deletion).
        data: Bytes,
    },
    /// Set a per-user static property. Has no effect on content bytes;
    /// applied to the property chain after the content commit succeeds.
    SetProperty {
        /// Property name (attach-by-name semantics).
        name: String,
        /// Value the property is set to.
        value: PropertyValue,
    },
}

impl DocOp {
    /// Applies this op to `base`, returning the resulting content.
    ///
    /// Content-neutral ops ([`DocOp::SetProperty`]) return `base`
    /// unchanged. Range offsets are clamped to `base.len()` so an op
    /// rebased onto a shorter document degrades to an append-at-end
    /// rather than panicking.
    pub fn apply(&self, base: &Bytes) -> Bytes {
        match self {
            DocOp::Replace(data) => data.clone(),
            DocOp::Append(data) => {
                if data.is_empty() {
                    return base.clone();
                }
                let mut out = Vec::with_capacity(base.len() + data.len());
                out.extend_from_slice(base);
                out.extend_from_slice(data);
                Bytes::from(out)
            }
            DocOp::ReplaceRange { start, end, data } => {
                let len = base.len();
                let start = (*start as usize).min(len);
                let end = (*end as usize).clamp(start, len);
                let mut out = Vec::with_capacity(len - (end - start) + data.len());
                out.extend_from_slice(&base[..start]);
                out.extend_from_slice(data);
                out.extend_from_slice(&base[end..]);
                Bytes::from(out)
            }
            DocOp::SetProperty { .. } => base.clone(),
        }
    }

    /// True when the op edits content bytes (as opposed to properties).
    pub fn is_content(&self) -> bool {
        !matches!(self, DocOp::SetProperty { .. })
    }

    /// Short stable label for reports and traces.
    pub fn kind_label(&self) -> &'static str {
        match self {
            DocOp::Replace(_) => "replace",
            DocOp::Append(_) => "append",
            DocOp::ReplaceRange { .. } => "replace-range",
            DocOp::SetProperty { .. } => "set-property",
        }
    }
}

/// Applies `ops` to `base` in order, returning the final content.
pub fn apply_all(base: &Bytes, ops: &[DocOp]) -> Bytes {
    let mut view = base.clone();
    for op in ops {
        view = op.apply(&view);
    }
    view
}

/// True when the op list can be rebased onto a *different* base than it
/// was authored against: every op must express a relative edit. A full
/// [`DocOp::Replace`] pins the entire body, so any list containing one is
/// a snapshot, not a delta.
pub fn rebasable(ops: &[DocOp]) -> bool {
    !ops.is_empty() && !ops.iter().any(|op| matches!(op, DocOp::Replace(_)))
}

// ---------------------------------------------------------------------------
// Wire format (shared by the journal and batch writes)
// ---------------------------------------------------------------------------
//
//   op      := tag u8 ‖ payload
//   payload := Replace | Append   : len u32 LE ‖ bytes
//              ReplaceRange       : start u64 LE ‖ end u64 LE ‖ len u32 LE ‖ bytes
//              SetProperty        : nlen u32 LE ‖ name ‖ vtag u8 ‖ value
//   value   := Str  : len u32 LE ‖ utf8
//              Int  : i64 LE
//              Bool : u8
//              Float: f64 LE bits
//   ops     := count u32 LE ‖ op*

const TAG_REPLACE: u8 = 0;
const TAG_APPEND: u8 = 1;
const TAG_RANGE: u8 = 2;
const TAG_SET_PROPERTY: u8 = 3;

const VTAG_STR: u8 = 0;
const VTAG_INT: u8 = 1;
const VTAG_BOOL: u8 = 2;
const VTAG_FLOAT: u8 = 3;
const VTAG_BLOB: u8 = 4;

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(data);
}

fn take_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let v = u32::from_le_bytes(buf.get(*at..*at + 4)?.try_into().ok()?);
    *at += 4;
    Some(v)
}

fn take_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(buf.get(*at..*at + 8)?.try_into().ok()?);
    *at += 8;
    Some(v)
}

fn take_bytes(buf: &[u8], at: &mut usize) -> Option<Bytes> {
    let len = take_u32(buf, at)? as usize;
    let slice = buf.get(*at..*at + len)?;
    *at += len;
    Some(Bytes::copy_from_slice(slice))
}

impl DocOp {
    /// Serializes this op onto `out` in the wire format above.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            DocOp::Replace(data) => {
                out.push(TAG_REPLACE);
                put_bytes(out, data);
            }
            DocOp::Append(data) => {
                out.push(TAG_APPEND);
                put_bytes(out, data);
            }
            DocOp::ReplaceRange { start, end, data } => {
                out.push(TAG_RANGE);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
                put_bytes(out, data);
            }
            DocOp::SetProperty { name, value } => {
                out.push(TAG_SET_PROPERTY);
                put_bytes(out, name.as_bytes());
                match value {
                    PropertyValue::Str(s) => {
                        out.push(VTAG_STR);
                        put_bytes(out, s.as_bytes());
                    }
                    PropertyValue::Int(i) => {
                        out.push(VTAG_INT);
                        out.extend_from_slice(&i.to_le_bytes());
                    }
                    PropertyValue::Bool(b) => {
                        out.push(VTAG_BOOL);
                        out.push(u8::from(*b));
                    }
                    PropertyValue::Float(f) => {
                        out.push(VTAG_FLOAT);
                        out.extend_from_slice(&f.to_bits().to_le_bytes());
                    }
                    PropertyValue::Blob(data) => {
                        out.push(VTAG_BLOB);
                        put_bytes(out, data);
                    }
                }
            }
        }
    }

    /// Decodes one op from `buf` at `*at`, advancing the cursor. Returns
    /// `None` on truncation or an unknown tag (corrupt record — the caller
    /// discards the whole record, the journal checksum makes this rare).
    pub fn decode(buf: &[u8], at: &mut usize) -> Option<DocOp> {
        let tag = *buf.get(*at)?;
        *at += 1;
        match tag {
            TAG_REPLACE => Some(DocOp::Replace(take_bytes(buf, at)?)),
            TAG_APPEND => Some(DocOp::Append(take_bytes(buf, at)?)),
            TAG_RANGE => {
                let start = take_u64(buf, at)?;
                let end = take_u64(buf, at)?;
                let data = take_bytes(buf, at)?;
                Some(DocOp::ReplaceRange { start, end, data })
            }
            TAG_SET_PROPERTY => {
                let name = String::from_utf8(take_bytes(buf, at)?.to_vec()).ok()?;
                let vtag = *buf.get(*at)?;
                *at += 1;
                let value = match vtag {
                    VTAG_STR => {
                        PropertyValue::Str(String::from_utf8(take_bytes(buf, at)?.to_vec()).ok()?)
                    }
                    VTAG_INT => PropertyValue::Int(i64::from_le_bytes(
                        buf.get(*at..*at + 8)?.try_into().ok()?,
                    )),
                    VTAG_BOOL => PropertyValue::Bool(*buf.get(*at)? != 0),
                    VTAG_FLOAT => PropertyValue::Float(f64::from_bits(u64::from_le_bytes(
                        buf.get(*at..*at + 8)?.try_into().ok()?,
                    ))),
                    VTAG_BLOB => PropertyValue::Blob(take_bytes(buf, at)?),
                    _ => return None,
                };
                match vtag {
                    VTAG_INT | VTAG_FLOAT => *at += 8,
                    VTAG_BOOL => *at += 1,
                    _ => {}
                }
                Some(DocOp::SetProperty { name, value })
            }
            _ => None,
        }
    }
}

/// Serializes an op list (count-prefixed) in the wire format.
pub fn encode_ops(ops: &[DocOp]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        op.encode_into(&mut out);
    }
    out
}

/// Decodes a count-prefixed op list from `buf` at `*at`.
pub fn decode_ops(buf: &[u8], at: &mut usize) -> Option<Vec<DocOp>> {
    let count = take_u32(buf, at)? as usize;
    // Each op is at least 5 bytes (tag + a length); reject absurd counts
    // before allocating.
    if count > buf.len().saturating_sub(*at) {
        return None;
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        ops.push(DocOp::decode(buf, at)?);
    }
    Some(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn append_and_range_apply() {
        let base = b("hello world");
        assert_eq!(DocOp::Append(b("!")).apply(&base), b("hello world!"));
        let op = DocOp::ReplaceRange {
            start: 6,
            end: 11,
            data: b("rust"),
        };
        assert_eq!(op.apply(&base), b("hello rust"));
        // Deletion: empty replacement.
        let del = DocOp::ReplaceRange {
            start: 0,
            end: 6,
            data: b(""),
        };
        assert_eq!(del.apply(&base), b("world"));
    }

    #[test]
    fn range_clamps_to_short_base() {
        let op = DocOp::ReplaceRange {
            start: 100,
            end: 200,
            data: b("x"),
        };
        assert_eq!(op.apply(&b("ab")), b("abx"));
        let crossed = DocOp::ReplaceRange {
            start: 5,
            end: 2,
            data: b("y"),
        };
        // end < start clamps to an insertion at start.
        assert_eq!(crossed.apply(&b("abcdefgh")), b("abcdeyfgh"));
    }

    #[test]
    fn set_property_is_content_neutral() {
        let op = DocOp::SetProperty {
            name: "color".into(),
            value: PropertyValue::Str("blue".into()),
        };
        let base = b("body");
        assert_eq!(op.apply(&base), base);
        assert!(!op.is_content());
    }

    #[test]
    fn apply_all_composes_in_order() {
        let base = b("v1");
        let ops = vec![
            DocOp::Append(b(";a")),
            DocOp::ReplaceRange {
                start: 0,
                end: 2,
                data: b("v2"),
            },
            DocOp::Append(b(";b")),
        ];
        assert_eq!(apply_all(&base, &ops), b("v2;a;b"));
    }

    #[test]
    fn rebasable_rejects_snapshots_and_empties() {
        assert!(!rebasable(&[]));
        assert!(!rebasable(&[DocOp::Replace(b("x"))]));
        assert!(!rebasable(&[DocOp::Append(b("x")), DocOp::Replace(b("y"))]));
        assert!(rebasable(&[
            DocOp::Append(b("x")),
            DocOp::SetProperty {
                name: "n".into(),
                value: PropertyValue::Int(3),
            },
        ]));
    }

    #[test]
    fn wire_roundtrip_all_variants() {
        let ops = vec![
            DocOp::Replace(b("full body")),
            DocOp::Append(b("tail")),
            DocOp::ReplaceRange {
                start: 3,
                end: 9,
                data: b("mid"),
            },
            DocOp::SetProperty {
                name: "s".into(),
                value: PropertyValue::Str("v".into()),
            },
            DocOp::SetProperty {
                name: "i".into(),
                value: PropertyValue::Int(-7),
            },
            DocOp::SetProperty {
                name: "b".into(),
                value: PropertyValue::Bool(true),
            },
            DocOp::SetProperty {
                name: "f".into(),
                value: PropertyValue::Float(2.5),
            },
            DocOp::SetProperty {
                name: "raw".into(),
                value: PropertyValue::Blob(b("\x00\x01\x02")),
            },
        ];
        let wire = encode_ops(&ops);
        let mut at = 0;
        let back = decode_ops(&wire, &mut at).expect("roundtrip decodes");
        assert_eq!(at, wire.len());
        assert_eq!(back, ops);
    }

    #[test]
    fn decode_rejects_truncation_and_bad_tags() {
        let wire = encode_ops(&[DocOp::Append(b("abc"))]);
        for cut in 0..wire.len() {
            let mut at = 0;
            assert!(decode_ops(&wire[..cut], &mut at).is_none(), "cut={cut}");
        }
        let mut bad = wire.clone();
        bad[4] = 0xEE; // unknown op tag
        let mut at = 0;
        assert!(decode_ops(&bad, &mut at).is_none());
    }
}
