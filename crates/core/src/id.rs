//! Identifier newtypes for documents, references, users, and properties.
//!
//! The Placeless middleware keys everything on small copyable ids: base
//! documents are shared across users, document references are per-user, and
//! properties get ids so they can be modified or removed individually
//! (property *modification* is one of the paper's four invalidation causes).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric value.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a base document (shared by all users holding references).
    DocumentId,
    "doc-"
);
define_id!(
    /// Identifies a user / document-space owner.
    UserId,
    "user-"
);
define_id!(
    /// Identifies one attached property instance on a document.
    PropertyId,
    "prop-"
);
define_id!(
    /// Identifies a cache instance subscribed to the invalidation bus.
    CacheId,
    "cache-"
);

/// Allocates monotonically increasing ids within one process.
#[derive(Debug, Default)]
pub struct IdAllocator {
    next: AtomicU64,
}

impl IdAllocator {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next raw id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the next id as a [`DocumentId`].
    pub fn next_document(&self) -> DocumentId {
        DocumentId(self.next())
    }

    /// Returns the next id as a [`PropertyId`].
    pub fn next_property(&self) -> PropertyId {
        PropertyId(self.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", DocumentId(3)), "doc-3");
        assert_eq!(format!("{:?}", UserId(7)), "user-7");
        assert_eq!(PropertyId(1).to_string(), "prop-1");
        assert_eq!(CacheId(0).to_string(), "cache-0");
    }

    #[test]
    fn allocator_is_monotonic_and_unique() {
        let alloc = IdAllocator::new();
        let a = alloc.next_document();
        let b = alloc.next_document();
        let c = alloc.next_property();
        assert!(a.raw() < b.raw() && b.raw() < c.raw());
    }

    #[test]
    fn ids_are_hashable_keys() {
        use std::collections::HashMap;
        let mut map = HashMap::new();
        map.insert((UserId(1), DocumentId(2)), "entry");
        assert_eq!(map.get(&(UserId(1), DocumentId(2))), Some(&"entry"));
        assert_eq!(map.get(&(UserId(2), DocumentId(2))), None);
    }
}
