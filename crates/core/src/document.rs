//! Base documents and per-user document references.
//!
//! "A base document is the link to the actual content of the document...
//! A document reference points to the base document. Each user of the
//! document owns a separate document reference." Universal properties live
//! on the base and are seen by everyone; personal properties live on a
//! reference and are seen only by its owner.

use crate::bitprovider::BitProvider;
use crate::id::{DocumentId, UserId};
use crate::property::PropertyList;
use std::sync::Arc;

/// The shared anchor of a document: its bit-provider plus universal
/// properties.
pub struct BaseDocument {
    /// The document's id.
    pub id: DocumentId,
    /// The bit-provider retrieving the actual content from its repository.
    pub provider: Arc<dyn BitProvider>,
    /// Universal properties, seen by all users with a reference.
    pub universal: PropertyList,
    /// Monotone counter bumped on every universal property mutation
    /// (attach, remove, modify, reorder). Caches holding a compiled view
    /// of the base half of the chain compare epochs to decide whether the
    /// view is still current without re-walking the property list.
    pub chain_epoch: u64,
}

impl BaseDocument {
    /// Creates a base document over `provider` with no properties.
    pub fn new(id: DocumentId, provider: Arc<dyn BitProvider>) -> Self {
        Self {
            id,
            provider,
            universal: PropertyList::new(),
            chain_epoch: 0,
        }
    }
}

/// One user's personalized view of a base document.
pub struct DocumentReference {
    /// The owning user.
    pub owner: UserId,
    /// The base document this reference points at.
    pub doc: DocumentId,
    /// Personal properties, seen only by the owner.
    pub personal: PropertyList,
}

impl DocumentReference {
    /// Creates a reference for `owner` pointing at `doc`, with no
    /// properties.
    pub fn new(owner: UserId, doc: DocumentId) -> Self {
        Self {
            owner,
            doc,
            personal: PropertyList::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitprovider::MemoryProvider;
    use crate::content::PropertyValue;
    use crate::id::PropertyId;
    use crate::property::AttachedProperty;

    #[test]
    fn base_document_carries_provider_and_properties() {
        let provider = MemoryProvider::new("p", "content", 0);
        let mut base = BaseDocument::new(DocumentId(1), provider);
        assert!(base.universal.is_empty());
        base.universal.attach(
            PropertyId(1),
            AttachedProperty::Static {
                name: "versioned".into(),
                value: PropertyValue::Bool(true),
            },
        );
        assert_eq!(base.universal.len(), 1);
        assert!(base.provider.describe().starts_with("memory:"));
    }

    #[test]
    fn references_are_per_user() {
        let r1 = DocumentReference::new(UserId(1), DocumentId(9));
        let r2 = DocumentReference::new(UserId(2), DocumentId(9));
        assert_eq!(r1.doc, r2.doc);
        assert_ne!(r1.owner, r2.owner);
        assert!(r1.personal.is_empty());
    }
}
