//! # Placeless Documents core middleware
//!
//! A from-scratch Rust implementation of the Placeless Documents system as
//! described in *Caching Documents with Active Properties* (de Lara et al.,
//! HotOS VII, 1999): documents with personalized, possibly *active*
//! properties that transform content on the read and write paths, plus the
//! mechanisms the paper introduces so such properties can collaborate with
//! content caches — cacheability indicators, replacement costs, notifiers,
//! and verifiers.
//!
//! ## Architecture
//!
//! * [`space::DocumentSpace`] — the middleware API: create base documents
//!   over [`bitprovider::BitProvider`]s, hand out per-user references,
//!   attach [`property::ActiveProperty`]s, and open read/write paths.
//! * [`streams`] — the custom input/output stream chains properties build.
//! * [`cacheability`], [`cost`], [`verifier`], [`notifier`] — everything a
//!   cache needs: the three-level cacheability indicator, accumulated
//!   replacement costs, hit-time verifiers, and the invalidation bus
//!   notifier properties post to.
//! * [`registry`] — attach-by-name property factories (runtime dynamism
//!   under a static compilation model).
//!
//! ## Quickstart
//!
//! ```
//! use placeless_core::prelude::*;
//! use placeless_simenv::VirtualClock;
//!
//! let clock = VirtualClock::new();
//! let space = DocumentSpace::new(clock);
//! let alice = UserId(1);
//!
//! // A base document whose bits live in an in-memory repository.
//! let provider = MemoryProvider::new("notes", "hello placeless", 500);
//! let doc = space.create_document(alice, provider);
//!
//! // Read through the (empty) property path.
//! let (bytes, report) = space.read_document(alice, doc).unwrap();
//! assert_eq!(bytes, "hello placeless");
//! assert!(report.cacheability.allows_caching());
//! ```

pub mod bitprovider;
pub mod cacheability;
pub mod collection;
pub mod content;
pub mod cost;
pub mod describe;
pub mod digest;
pub mod document;
pub mod error;
pub mod event;
pub mod external;
pub mod id;
pub mod notifier;
pub mod op;
pub mod plan;
pub mod profile;
pub mod property;
pub mod qos;
pub mod registry;
pub mod space;
pub mod streams;
pub mod verifier;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::bitprovider::{BitProvider, MemoryProvider};
    pub use crate::cacheability::Cacheability;
    pub use crate::collection::Collections;
    pub use crate::content::{Content, Params, PropertyValue};
    pub use crate::cost::ReplacementCost;
    pub use crate::describe::{DocumentDescription, PropertyInfo};
    pub use crate::digest::{md5, Md5, Signature};
    pub use crate::error::{PlacelessError, Result};
    pub use crate::event::{DocumentEvent, EventKind, EventSite, Interests};
    pub use crate::external::{ExternalSource, SimpleExternal};
    pub use crate::id::{CacheId, DocumentId, PropertyId, UserId};
    pub use crate::notifier::{Invalidation, InvalidationBus, InvalidationSink};
    pub use crate::op::{apply_all, rebasable, DocOp};
    pub use crate::plan::{PlanStage, TransformPlan};
    pub use crate::profile::{apply_profile, format_profile, parse_profile, PropertySpec};
    pub use crate::property::{
        ActiveProperty, AttachedProperty, EventCtx, FollowUp, PathCtx, PathReport, StageRecord,
    };
    pub use crate::qos::QosProperty;
    pub use crate::registry::PropertyRegistry;
    pub use crate::space::{DocumentSpace, Scope};
    pub use crate::streams::{
        read_all, write_all, InputStream, MemoryInput, OutputStream, TransformingInput,
        TransformingOutput,
    };
    pub use crate::verifier::{ClosureVerifier, EpochVerifier, TtlVerifier, Validity, Verifier};
}
