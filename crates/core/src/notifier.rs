//! Notifiers and the invalidation bus.
//!
//! "Notifiers are active properties themselves that are used to invalidate
//! cache entries resulting from changes through the Placeless system.
//! Notifiers send a notification to each of the affected caches to
//! invalidate the corresponding entries." They generalize file-system
//! callbacks (AFS) and semantic callbacks: a notifier fires only when its
//! predicate over the triggering event is satisfied.
//!
//! The [`InvalidationBus`] is the delivery fabric: caches subscribe as
//! [`InvalidationSink`]s; notifier properties post [`Invalidation`]s which
//! fan out to every subscribed cache. The bus also counts deliveries, which
//! the notifier-vs-verifier benchmark uses as the "load added to the
//! Placeless system".

use crate::id::{CacheId, DocumentId, UserId};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a notifier asks the caches to drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invalidation {
    /// Drop every user's cached version of the document (e.g. the source
    /// content changed, so all transformed versions are stale).
    Document(DocumentId),
    /// Drop one user's cached version (e.g. that user's personal property
    /// chain changed).
    UserDocument(DocumentId, UserId),
}

impl Invalidation {
    /// Returns the document this invalidation concerns.
    pub fn document(&self) -> DocumentId {
        match self {
            Invalidation::Document(d) => *d,
            Invalidation::UserDocument(d, _) => *d,
        }
    }

    /// Returns `true` if this invalidation covers `(doc, user)`.
    pub fn covers(&self, doc: DocumentId, user: UserId) -> bool {
        match self {
            Invalidation::Document(d) => *d == doc,
            Invalidation::UserDocument(d, u) => *d == doc && *u == user,
        }
    }
}

/// A cache's subscription endpoint.
pub trait InvalidationSink: Send + Sync {
    /// Returns the subscribing cache's id.
    fn cache_id(&self) -> CacheId;

    /// Delivers one invalidation.
    fn invalidate(&self, invalidation: &Invalidation);

    /// Delivers one invalidation together with the bus's sequence number.
    ///
    /// Sequence numbers are dense (1, 2, 3, …) over every *post*, whether
    /// or not it was delivered, so a sink that tracks the last number it
    /// saw detects dropped notifications as gaps and can demote the
    /// affected entries from notifier-based consistency to verifier
    /// revalidation. The default implementation ignores the number.
    fn invalidate_seq(&self, seq: u64, invalidation: &Invalidation) {
        let _ = seq;
        self.invalidate(invalidation);
    }
}

/// Fan-out delivery of invalidations from notifier properties to caches.
///
/// # Examples
///
/// ```
/// use placeless_core::id::{CacheId, DocumentId};
/// use placeless_core::notifier::{Invalidation, InvalidationBus, InvalidationSink};
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// struct Counting(AtomicUsize);
/// impl InvalidationSink for Counting {
///     fn cache_id(&self) -> CacheId { CacheId(1) }
///     fn invalidate(&self, _: &Invalidation) { self.0.fetch_add(1, Ordering::SeqCst); }
/// }
///
/// let bus = InvalidationBus::new();
/// let sink = Arc::new(Counting(AtomicUsize::new(0)));
/// bus.subscribe(sink.clone());
/// bus.post(Invalidation::Document(DocumentId(9)));
/// assert_eq!(sink.0.load(Ordering::SeqCst), 1);
/// ```
#[derive(Default)]
pub struct InvalidationBus {
    sinks: RwLock<Vec<Arc<dyn InvalidationSink>>>,
    posted: AtomicU64,
    delivered: AtomicU64,
    drop_next: AtomicU64,
    dropped: AtomicU64,
}

impl InvalidationBus {
    /// Creates an empty bus.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Subscribes a cache; it receives every subsequent invalidation.
    pub fn subscribe(&self, sink: Arc<dyn InvalidationSink>) {
        self.sinks.write().push(sink);
    }

    /// Unsubscribes a cache by id.
    pub fn unsubscribe(&self, id: CacheId) {
        self.sinks.write().retain(|s| s.cache_id() != id);
    }

    /// Posts an invalidation to every subscribed cache.
    ///
    /// Every post consumes the next sequence number. If a delivery fault
    /// is armed ([`InvalidationBus::drop_next_deliveries`]), the number is
    /// consumed but nothing is delivered — subscribers that track
    /// sequence numbers observe the gap on the next delivery.
    pub fn post(&self, invalidation: Invalidation) {
        let seq = self.posted.fetch_add(1, Ordering::Relaxed) + 1;
        if self
            .drop_next
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let sinks = self.sinks.read();
        for sink in sinks.iter() {
            sink.invalidate_seq(seq, &invalidation);
            self.delivered.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Arms a delivery fault: the next `n` posts are silently dropped
    /// (their sequence numbers are still consumed). Models a lossy
    /// notification channel in resilience experiments.
    pub fn drop_next_deliveries(&self, n: u64) {
        self.drop_next.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns how many posts were dropped by armed delivery faults.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Returns `(invalidations posted, deliveries made)`.
    ///
    /// Each post fans out to every subscriber, so `delivered >= posted` when
    /// caches are attached. The notifier-vs-verifier experiment reads these
    /// as the middleware load notifiers impose.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.posted.load(Ordering::Relaxed),
            self.delivered.load(Ordering::Relaxed),
        )
    }

    /// Returns the number of subscribed caches.
    pub fn subscriber_count(&self) -> usize {
        self.sinks.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    struct Recording {
        id: CacheId,
        seen: Mutex<Vec<Invalidation>>,
    }

    impl Recording {
        fn new(id: u64) -> Arc<Self> {
            Arc::new(Self {
                id: CacheId(id),
                seen: Mutex::new(Vec::new()),
            })
        }
    }

    impl InvalidationSink for Recording {
        fn cache_id(&self) -> CacheId {
            self.id
        }
        fn invalidate(&self, inv: &Invalidation) {
            self.seen.lock().push(*inv);
        }
    }

    #[test]
    fn covers_matches_scopes() {
        let doc = DocumentId(1);
        let all = Invalidation::Document(doc);
        assert!(all.covers(doc, UserId(1)));
        assert!(all.covers(doc, UserId(2)));
        assert!(!all.covers(DocumentId(2), UserId(1)));

        let one = Invalidation::UserDocument(doc, UserId(1));
        assert!(one.covers(doc, UserId(1)));
        assert!(!one.covers(doc, UserId(2)));
        assert_eq!(one.document(), doc);
    }

    #[test]
    fn post_fans_out_to_all_subscribers() {
        let bus = InvalidationBus::new();
        let a = Recording::new(1);
        let b = Recording::new(2);
        bus.subscribe(a.clone());
        bus.subscribe(b.clone());
        bus.post(Invalidation::Document(DocumentId(7)));
        assert_eq!(a.seen.lock().len(), 1);
        assert_eq!(b.seen.lock().len(), 1);
        assert_eq!(bus.counters(), (1, 2));
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let bus = InvalidationBus::new();
        let a = Recording::new(1);
        bus.subscribe(a.clone());
        bus.unsubscribe(CacheId(1));
        bus.post(Invalidation::Document(DocumentId(7)));
        assert!(a.seen.lock().is_empty());
        assert_eq!(bus.subscriber_count(), 0);
        assert_eq!(bus.counters(), (1, 0), "posted but nothing delivered");
    }

    #[test]
    fn sequence_numbers_are_dense_and_survive_drops() {
        struct Seqs {
            seen: Mutex<Vec<u64>>,
        }
        impl InvalidationSink for Seqs {
            fn cache_id(&self) -> CacheId {
                CacheId(9)
            }
            fn invalidate(&self, _: &Invalidation) {}
            fn invalidate_seq(&self, seq: u64, inv: &Invalidation) {
                self.seen.lock().push(seq);
                self.invalidate(inv);
            }
        }
        let bus = InvalidationBus::new();
        let sink = Arc::new(Seqs {
            seen: Mutex::new(Vec::new()),
        });
        bus.subscribe(sink.clone());
        bus.post(Invalidation::Document(DocumentId(1)));
        bus.drop_next_deliveries(2);
        bus.post(Invalidation::Document(DocumentId(2)));
        bus.post(Invalidation::Document(DocumentId(3)));
        bus.post(Invalidation::Document(DocumentId(4)));
        // Seq 2 and 3 were consumed but never delivered: the gap is
        // visible to the subscriber.
        assert_eq!(*sink.seen.lock(), vec![1, 4]);
        assert_eq!(bus.dropped_count(), 2);
        assert_eq!(bus.counters(), (4, 2), "4 posted, 2 delivered");
    }

    #[test]
    fn default_sink_ignores_sequence_numbers() {
        let bus = InvalidationBus::new();
        let a = Recording::new(1);
        bus.subscribe(a.clone());
        bus.post(Invalidation::Document(DocumentId(5)));
        assert_eq!(a.seen.lock().len(), 1, "legacy sinks keep working");
    }

    #[test]
    fn posts_without_subscribers_are_counted() {
        let bus = InvalidationBus::new();
        bus.post(Invalidation::UserDocument(DocumentId(1), UserId(2)));
        assert_eq!(bus.counters(), (1, 0));
    }
}
