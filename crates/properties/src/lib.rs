//! # Standard active-property library
//!
//! The concrete properties from the paper's examples, ready to attach:
//!
//! * content transforms — [`spellcheck::SpellCheck`],
//!   [`translate::Translate`], [`summarize::Summarize`],
//!   [`rot13::Rot13AtRest`], [`compress::CompressAtRest`],
//!   [`markers::Watermark`];
//! * behaviours — [`versioning::Versioning`] (save a version per write),
//!   [`replication::ReplicateTo`] (timer-driven site copies),
//!   [`audit::AuditTrail`] (read trail with `CacheableWithEvents`);
//! * caching collaborators — the [`notifiers`] family,
//!   [`markers::TtlProperty`], [`markers::UncacheableMarker`],
//!   [`portfolio::Portfolio`] (smart threshold verifier with in-place
//!   replacement);
//! * [`register::register_standard`] — attach-by-name registration.

pub mod audit;
pub mod compress;
pub mod deadline;
pub mod markers;
pub mod notifiers;
pub mod portfolio;
pub mod register;
pub mod replication;
pub mod rot13;
pub mod spellcheck;
pub mod summarize;
pub mod translate;
pub mod versioning;

#[cfg(test)]
pub(crate) mod testutil;

pub use audit::AuditTrail;
pub use compress::CompressAtRest;
pub use deadline::Deadline;
pub use markers::{TtlProperty, UncacheableMarker, Watermark};
pub use notifiers::{ContentWriteNotifier, ExternalChangeNotifier, PropertyChangeNotifier};
pub use portfolio::Portfolio;
pub use register::register_standard;
pub use replication::ReplicateTo;
pub use rot13::Rot13AtRest;
pub use spellcheck::SpellCheck;
pub use summarize::Summarize;
pub use translate::Translate;
pub use versioning::Versioning;
