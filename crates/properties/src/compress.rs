//! Storage-side compression property (run-length encoding).
//!
//! Content is RLE-compressed on the write path and decompressed on the read
//! path, so the repository stores the compact form while applications see
//! plain content. RLE is trivially weak, but the property exercises an
//! *asymmetric* transform pair — the two directions differ, unlike ROT13 —
//! and the codec is a substrate others reuse.

use bytes::Bytes;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, OutputStream, TransformingInput, TransformingOutput};
use std::sync::Arc;

/// RLE-compresses `data` as `(count, byte)` pairs with runs capped at 255.
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut iter = data.iter().copied();
    let Some(mut current) = iter.next() else {
        return out;
    };
    let mut run: u8 = 1;
    for b in iter {
        if b == current && run < u8::MAX {
            run += 1;
        } else {
            out.push(run);
            out.push(current);
            current = b;
            run = 1;
        }
    }
    out.push(run);
    out.push(current);
    out
}

/// Decompresses an [`rle_compress`] buffer.
pub fn rle_decompress(data: &[u8]) -> Result<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return Err(PlacelessError::Repository(
            "RLE: truncated stream".to_owned(),
        ));
    }
    let mut out = Vec::with_capacity(data.len() * 2);
    for pair in data.chunks_exact(2) {
        let (run, byte) = (pair[0], pair[1]);
        if run == 0 {
            return Err(PlacelessError::Repository(
                "RLE: zero-length run".to_owned(),
            ));
        }
        out.extend(std::iter::repeat_n(byte, run as usize));
    }
    Ok(out)
}

/// Compresses at rest, decompresses on read.
pub struct CompressAtRest;

impl CompressAtRest {
    /// Creates the property.
    pub fn new() -> Arc<Self> {
        Arc::new(Self)
    }
}

impl ActiveProperty for CompressAtRest {
    fn name(&self) -> &str {
        "compress-at-rest"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream, EventKind::GetOutputStream])
    }

    fn execution_cost_micros(&self) -> u64 {
        300
    }

    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(|bytes| Ok(Bytes::from(rle_decompress(&bytes)?))),
        )))
    }

    fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        // Decompression is parameterless; the version tag would change if
        // the wire format ever did.
        Some(b"rle-v1".to_vec())
    }

    fn wrap_output(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn OutputStream>,
    ) -> Result<Box<dyn OutputStream>> {
        Ok(Box::new(TransformingOutput::new(
            inner,
            Box::new(|bytes| Ok(Bytes::from(rle_compress(&bytes)))),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{read_through, write_through};

    #[test]
    fn codec_roundtrips() {
        for data in [
            &b""[..],
            b"a",
            b"aaaa",
            b"abcabc",
            b"aaaaaaaaaabbbbbbbbbbcccccccccc",
        ] {
            let compressed = rle_compress(data);
            assert_eq!(rle_decompress(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn long_runs_split_at_255() {
        let data = vec![b'x'; 300];
        let compressed = rle_compress(&data);
        assert_eq!(compressed, vec![255, b'x', 45, b'x']);
        assert_eq!(rle_decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(rle_decompress(&[1]).is_err(), "odd length");
        assert!(rle_decompress(&[0, b'x']).is_err(), "zero run");
    }

    #[test]
    fn repetitive_content_shrinks() {
        let data = vec![b'-'; 1_000];
        assert!(rle_compress(&data).len() < 20);
    }

    #[test]
    fn property_roundtrips_through_storage() {
        let stored = write_through(CompressAtRest::new(), b"aaaabbbbcccc plain tail");
        assert_ne!(&stored[..], b"aaaabbbbcccc plain tail");
        assert_eq!(
            read_through(CompressAtRest::new(), &stored),
            "aaaabbbbcccc plain tail"
        );
    }
}
