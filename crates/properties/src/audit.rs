//! The read-audit-trail property.
//!
//! "An active property that creates a read-audit-trail for a document only
//! needs to know when read operations occur, but does not need to receive
//! the actual content being read." It therefore votes
//! `CacheableWithEvents`: the cache may serve the bytes locally, but must
//! forward the operation event so the trail stays complete.

use parking_lot::Mutex;
use placeless_core::cacheability::Cacheability;
use placeless_core::error::Result;
use placeless_core::event::{DocumentEvent, EventKind, Interests};
use placeless_core::id::UserId;
use placeless_core::property::{ActiveProperty, EventCtx, PathCtx, PathReport};
use placeless_core::streams::InputStream;
use placeless_simenv::Instant;
use std::sync::Arc;

/// One audit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditRecord {
    /// Who read the document, when known.
    pub user: Option<UserId>,
    /// When the read happened (virtual time).
    pub at: Instant,
    /// Whether the read was served by a cache (forwarded event) rather
    /// than the full path.
    pub via_cache: bool,
}

/// Records every read of the document, including cache-served ones.
pub struct AuditTrail {
    records: Arc<Mutex<Vec<AuditRecord>>>,
}

impl AuditTrail {
    /// Creates an empty trail.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            records: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Returns a copy of the trail.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.records.lock().clone()
    }

    /// Returns the number of recorded reads.
    pub fn read_count(&self) -> usize {
        self.records.lock().len()
    }
}

impl ActiveProperty for AuditTrail {
    fn name(&self) -> &str {
        "read-audit-trail"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream, EventKind::CacheRead])
    }

    fn execution_cost_micros(&self) -> u64 {
        20
    }

    fn wrap_input(
        &self,
        ctx: &PathCtx<'_>,
        report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        report.vote(Cacheability::CacheableWithEvents);
        self.records.lock().push(AuditRecord {
            user: Some(ctx.user),
            at: ctx.clock.now(),
            via_cache: false,
        });
        // The content itself is not needed; pass it through untouched.
        Ok(inner)
    }

    fn on_event(&self, ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
        if event.kind == EventKind::CacheRead {
            self.records.lock().push(AuditRecord {
                user: event.user,
                at: ctx.clock.now(),
                via_cache: true,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::read_through_with_report;
    use placeless_core::prelude::*;
    use placeless_simenv::{LatencyModel, VirtualClock};

    #[test]
    fn votes_cacheable_with_events_and_passes_content() {
        let trail = AuditTrail::new();
        let (bytes, report) = read_through_with_report(trail.clone(), b"secret plans");
        assert_eq!(bytes, "secret plans");
        assert_eq!(report.cacheability, Cacheability::CacheableWithEvents);
        assert_eq!(trail.read_count(), 1);
        assert!(!trail.records()[0].via_cache);
    }

    #[test]
    fn cache_served_reads_still_land_in_the_trail() {
        let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
        let provider = MemoryProvider::new("t", "content", 0);
        let alice = UserId(1);
        let doc = space.create_document(alice, provider);
        let trail = AuditTrail::new();
        space
            .attach_active(Scope::Universal, doc, trail.clone())
            .unwrap();
        let _ = space.read_document(alice, doc).unwrap();
        space
            .post_cache_event(alice, doc, EventKind::CacheRead)
            .unwrap();
        let records = trail.records();
        assert_eq!(records.len(), 2);
        assert!(!records[0].via_cache);
        assert!(records[1].via_cache);
        assert_eq!(records[1].user, Some(alice));
    }
}
