//! Shared helpers for property unit tests.

use bytes::Bytes;
use parking_lot::Mutex;
use placeless_core::event::EventSite;
use placeless_core::id::{DocumentId, UserId};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport, PropsSnapshot};
use placeless_core::streams::{read_all, write_all, CollectOutput, InputStream, MemoryInput};
use placeless_simenv::VirtualClock;
use std::sync::Arc;

/// Runs `input` through a property's read-path wrapper and returns the
/// transformed bytes.
pub fn read_through(prop: Arc<dyn ActiveProperty>, input: &[u8]) -> Bytes {
    read_through_with_report(prop, input).0
}

/// Like [`read_through`], also returning the path report.
pub fn read_through_with_report(
    prop: Arc<dyn ActiveProperty>,
    input: &[u8],
) -> (Bytes, PathReport) {
    let clock = VirtualClock::new();
    let snap = PropsSnapshot::default();
    let ctx = PathCtx {
        clock: &clock,
        doc: DocumentId(1),
        user: UserId(1),
        site: EventSite::Reference(UserId(1)),
        props: &snap,
    };
    let mut report = PathReport::default();
    let inner: Box<dyn InputStream> = Box::new(MemoryInput::new(Bytes::copy_from_slice(input)));
    let mut wrapped = prop
        .wrap_input(&ctx, &mut report, inner)
        .expect("wrap_input");
    let bytes = read_all(wrapped.as_mut()).expect("read");
    (bytes, report)
}

/// Resolves a property's transform token against the given static props
/// (empty slice for a bare context).
pub fn token_with_props(prop: &dyn ActiveProperty, pairs: &[(&str, &str)]) -> Option<Vec<u8>> {
    let clock = VirtualClock::new();
    let snap = PropsSnapshot::from_pairs(
        pairs
            .iter()
            .map(|&(name, value)| (name.to_owned(), value.into()))
            .collect(),
    );
    let ctx = PathCtx {
        clock: &clock,
        doc: DocumentId(1),
        user: UserId(1),
        site: EventSite::Reference(UserId(1)),
        props: &snap,
    };
    prop.transform_token(&ctx)
}

/// Runs `input` through a property's write-path wrapper and returns what
/// reached the sink.
pub fn write_through(prop: Arc<dyn ActiveProperty>, input: &[u8]) -> Bytes {
    let clock = VirtualClock::new();
    let snap = PropsSnapshot::default();
    let ctx = PathCtx {
        clock: &clock,
        doc: DocumentId(1),
        user: UserId(1),
        site: EventSite::Reference(UserId(1)),
        props: &snap,
    };
    let mut report = PathReport::default();
    let captured = Arc::new(Mutex::new(Bytes::new()));
    let sink_capture = captured.clone();
    let sink = CollectOutput::new(move |bytes| {
        *sink_capture.lock() = bytes;
        Ok(())
    });
    let mut wrapped = prop
        .wrap_output(&ctx, &mut report, Box::new(sink))
        .expect("wrap_output");
    write_all(wrapped.as_mut(), input).expect("write");
    wrapped.close().expect("close");
    let result = captured.lock().clone();
    result
}
