//! The financial-portfolio property: heavy per-user customization from
//! external sources.
//!
//! §3: "For a document with heavy customization, like a financial portfolio
//! page, the verifier may invalidate the cached entry only if there has
//! been significant change in the stock quotes or even modify these values
//! as needed."
//!
//! [`Portfolio`] appends a live quotes section to the document on the read
//! path and ships a *smart verifier*: quotes unchanged → `Valid`; quotes
//! moved but all within the configured threshold → `Valid` (insignificant);
//! any quote moved beyond the threshold → `Replace` with the quotes section
//! rebuilt in place, so the cache refreshes the entry without re-running
//! the full read path.

use bytes::Bytes;
use parking_lot::Mutex;
use placeless_core::error::Result;
use placeless_core::event::{EventKind, Interests};
use placeless_core::external::ExternalSource;
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, TransformingInput};
use placeless_core::verifier::{ClosureVerifier, Validity};
use std::sync::Arc;

/// Appends live quotes and ships a threshold verifier.
pub struct Portfolio {
    sources: Vec<(String, Arc<dyn ExternalSource>)>,
    /// Relative price move (e.g. `0.01` = 1 %) below which a change is
    /// insignificant.
    threshold: f64,
}

impl Portfolio {
    /// Creates a portfolio over `(symbol, source)` pairs with a relative
    /// significance threshold.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(sources: Vec<(String, Arc<dyn ExternalSource>)>, threshold: f64) -> Arc<Self> {
        Arc::new(Self {
            sources,
            threshold: threshold.max(0.0),
        })
    }

    fn quotes_section(sources: &[(String, Arc<dyn ExternalSource>)]) -> String {
        let mut out = String::from("\n--- portfolio ---\n");
        for (symbol, source) in sources {
            out.push_str(symbol);
            out.push(' ');
            out.push_str(&String::from_utf8_lossy(&source.read()));
            out.push('\n');
        }
        out
    }

    fn read_values(sources: &[(String, Arc<dyn ExternalSource>)]) -> Vec<f64> {
        sources
            .iter()
            .map(|(_, s)| {
                String::from_utf8_lossy(&s.read())
                    .trim()
                    .parse::<f64>()
                    .unwrap_or(0.0)
            })
            .collect()
    }
}

impl ActiveProperty for Portfolio {
    fn name(&self) -> &str {
        "portfolio"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }

    fn execution_cost_micros(&self) -> u64 {
        500 + 100 * self.sources.len() as u64
    }

    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        let sources = self.sources.clone();
        let threshold = self.threshold;

        // The body (content before the quotes section) is captured when the
        // transform runs so the verifier can rebuild the entry in place.
        let body: Arc<Mutex<Option<Bytes>>> = Arc::new(Mutex::new(None));
        let fill_values: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Self::read_values(&sources)));

        let probe_cost = 25 * sources.len().max(1) as u64;

        let v_sources = sources.clone();
        let v_body = body.clone();
        let v_values = fill_values.clone();
        report.add_verifier(ClosureVerifier::new(
            "portfolio-quotes",
            probe_cost,
            move |_| {
                let pinned = v_values.lock().clone();
                let now = Portfolio::read_values(&v_sources);
                if pinned == now {
                    return Validity::Valid;
                }
                let significant = pinned.iter().zip(&now).any(|(&old, &new)| {
                    let base = old.abs().max(f64::EPSILON);
                    (new - old).abs() / base > threshold
                });
                if !significant {
                    return Validity::Valid;
                }
                // Rebuild the entry in place: body + fresh quotes.
                match v_body.lock().as_ref() {
                    Some(body) => {
                        *v_values.lock() = now;
                        let mut out = body.to_vec();
                        out.extend_from_slice(Portfolio::quotes_section(&v_sources).as_bytes());
                        Validity::Replace(Bytes::from(out))
                    }
                    // Body unknown (entry filled elsewhere): force a refill.
                    None => Validity::Invalid,
                }
            },
        ));

        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(move |bytes| {
                *body.lock() = Some(bytes.clone());
                *fill_values.lock() = Portfolio::read_values(&sources);
                let mut out = bytes.to_vec();
                out.extend_from_slice(Portfolio::quotes_section(&sources).as_bytes());
                Ok(Bytes::from(out))
            }),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::read_through_with_report;
    use placeless_core::external::SimpleExternal;
    use placeless_simenv::VirtualClock;

    type SourceList = Vec<(String, Arc<dyn ExternalSource>)>;

    fn sources(price: &str) -> (Arc<SimpleExternal>, SourceList) {
        let xrx = SimpleExternal::new("stock:XRX", price.to_owned());
        let list: Vec<(String, Arc<dyn ExternalSource>)> =
            vec![("XRX".to_owned(), xrx.clone() as Arc<dyn ExternalSource>)];
        (xrx, list)
    }

    #[test]
    fn appends_quotes_section() {
        let (_xrx, list) = sources("42.50");
        let prop = Portfolio::new(list, 0.01);
        let (bytes, report) = read_through_with_report(prop, b"My investments");
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("My investments"));
        assert!(text.contains("XRX 42.50"));
        assert_eq!(report.verifiers.len(), 1);
    }

    #[test]
    fn unchanged_quotes_stay_valid() {
        let clock = VirtualClock::new();
        let (_xrx, list) = sources("42.50");
        let prop = Portfolio::new(list, 0.01);
        let (_bytes, report) = read_through_with_report(prop, b"body");
        assert_eq!(report.verifiers[0].check(&clock), Validity::Valid);
    }

    #[test]
    fn insignificant_moves_stay_valid() {
        let clock = VirtualClock::new();
        let (xrx, list) = sources("100.0");
        let prop = Portfolio::new(list, 0.05);
        let (_bytes, report) = read_through_with_report(prop, b"body");
        xrx.set("101.0"); // 1 % move, threshold 5 %
        assert_eq!(report.verifiers[0].check(&clock), Validity::Valid);
    }

    #[test]
    fn significant_moves_replace_in_place() {
        let clock = VirtualClock::new();
        let (xrx, list) = sources("100.0");
        let prop = Portfolio::new(list, 0.01);
        let (_bytes, report) = read_through_with_report(prop, b"body");
        xrx.set("110.0"); // 10 % move
        match report.verifiers[0].check(&clock) {
            Validity::Replace(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                assert!(text.starts_with("body"));
                assert!(text.contains("XRX 110"));
            }
            other => panic!("expected Replace, got {other:?}"),
        }
        // After the in-place refresh, the verifier is valid again.
        assert_eq!(report.verifiers[0].check(&clock), Validity::Valid);
    }
}
