//! The "keep a copy at PARC and at Rice" replication property.
//!
//! Eyal's personal property maintains a copy of the content at a second
//! site, driven by timer events ("assuming that Eyal's replication between
//! PARC and Rice occurs only once at the end of the day"). The property
//! captures each revision as it flows through the write path and, on the
//! next timer tick, copies the latest revision to the remote file system
//! over its (slow) link.

use bytes::Bytes;
use parking_lot::Mutex;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::event::{DocumentEvent, EventKind, Interests};
use placeless_core::property::{ActiveProperty, EventCtx, PathCtx, PathReport};
use placeless_core::streams::OutputStream;
use placeless_repository::MemFs;
use placeless_simenv::Link;
use std::sync::Arc;

/// Timer-driven replication of the latest written revision to a remote
/// path.
pub struct ReplicateTo {
    target_fs: Arc<MemFs>,
    target_path: String,
    link: Link,
    pending: Arc<Mutex<Option<Bytes>>>,
    copies_made: Mutex<u64>,
}

impl ReplicateTo {
    /// Creates a replicator writing to `path` on `target_fs` over `link`.
    pub fn new(target_fs: Arc<MemFs>, path: &str, link: Link) -> Arc<Self> {
        Arc::new(Self {
            target_fs,
            target_path: path.to_owned(),
            link,
            pending: Arc::new(Mutex::new(None)),
            copies_made: Mutex::new(0),
        })
    }

    /// Seeds the pending revision (e.g. with the document's current
    /// content at attach time) so the first tick replicates even before a
    /// write.
    pub fn seed(&self, content: impl Into<Bytes>) {
        *self.pending.lock() = Some(content.into());
    }

    /// Returns how many copies have been shipped.
    pub fn copies_made(&self) -> u64 {
        *self.copies_made.lock()
    }

    /// Returns `true` if a revision awaits the next tick.
    pub fn has_pending(&self) -> bool {
        self.pending.lock().is_some()
    }
}

impl ActiveProperty for ReplicateTo {
    fn name(&self) -> &str {
        "replicate-to"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetOutputStream, EventKind::Timer])
    }

    fn execution_cost_micros(&self) -> u64 {
        100
    }

    fn wrap_output(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn OutputStream>,
    ) -> Result<Box<dyn OutputStream>> {
        Ok(Box::new(CaptureTee {
            inner: Some(inner),
            buf: Vec::new(),
            pending: self.pending.clone(),
        }))
    }

    fn on_event(&self, ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
        if event.kind != EventKind::Timer {
            return Ok(());
        }
        let Some(content) = self.pending.lock().take() else {
            return Ok(());
        };
        // Ship the bytes over the (typically WAN) link, then store.
        self.link.transfer(ctx.clock, content.len() as u64);
        if self.target_fs.exists(&self.target_path) {
            self.target_fs.write_direct(&self.target_path, content)?;
        } else {
            self.target_fs.create(&self.target_path, content);
        }
        *self.copies_made.lock() += 1;
        Ok(())
    }
}

/// Pass-through output that stores the final content into `pending`.
struct CaptureTee {
    inner: Option<Box<dyn OutputStream>>,
    buf: Vec<u8>,
    pending: Arc<Mutex<Option<Bytes>>>,
}

impl OutputStream for CaptureTee {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        let inner = self.inner.as_mut().ok_or(PlacelessError::StreamClosed)?;
        placeless_core::streams::write_all(inner.as_mut(), buf)?;
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn close(&mut self) -> Result<()> {
        let mut inner = self.inner.take().ok_or(PlacelessError::StreamClosed)?;
        *self.pending.lock() = Some(Bytes::from(std::mem::take(&mut self.buf)));
        inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::prelude::*;
    use placeless_simenv::{LatencyModel, VirtualClock};

    const EYAL: UserId = UserId(1);

    fn wan() -> Link {
        Link::new(80_000, 125_000, 0.0, 9)
    }

    #[test]
    fn replication_waits_for_the_timer() {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
        let provider = MemoryProvider::new("parc", "draft", 0);
        let doc = space.create_document(EYAL, provider);
        let rice = MemFs::new(clock.clone());
        let replicate = ReplicateTo::new(rice.clone(), "/rice/hotos.doc", wan());
        space
            .attach_active(Scope::Personal(EYAL), doc, replicate.clone())
            .unwrap();

        space.write_document(EYAL, doc, b"draft v2").unwrap();
        assert!(!rice.exists("/rice/hotos.doc"), "not yet shipped");
        assert!(replicate.has_pending());

        space.timer_tick().unwrap();
        assert_eq!(rice.read("/rice/hotos.doc").unwrap(), "draft v2");
        assert_eq!(replicate.copies_made(), 1);
        assert!(!replicate.has_pending());
    }

    #[test]
    fn idle_ticks_ship_nothing() {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
        let provider = MemoryProvider::new("parc", "draft", 0);
        let doc = space.create_document(EYAL, provider);
        let rice = MemFs::new(clock.clone());
        let replicate = ReplicateTo::new(rice.clone(), "/rice/x", wan());
        space
            .attach_active(Scope::Personal(EYAL), doc, replicate.clone())
            .unwrap();
        space.timer_tick().unwrap();
        space.timer_tick().unwrap();
        assert_eq!(replicate.copies_made(), 0);
    }

    #[test]
    fn only_latest_revision_ships() {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
        let provider = MemoryProvider::new("parc", "draft", 0);
        let doc = space.create_document(EYAL, provider);
        let rice = MemFs::new(clock.clone());
        let replicate = ReplicateTo::new(rice.clone(), "/rice/x", wan());
        space
            .attach_active(Scope::Personal(EYAL), doc, replicate.clone())
            .unwrap();
        space.write_document(EYAL, doc, b"v1").unwrap();
        space.write_document(EYAL, doc, b"v2").unwrap();
        space.timer_tick().unwrap();
        assert_eq!(rice.read("/rice/x").unwrap(), "v2");
        assert_eq!(replicate.copies_made(), 1, "coalesced into one copy");
    }

    #[test]
    fn seed_replicates_without_a_write() {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
        let provider = MemoryProvider::new("parc", "draft", 0);
        let doc = space.create_document(EYAL, provider);
        let rice = MemFs::new(clock.clone());
        let replicate = ReplicateTo::new(rice.clone(), "/rice/x", wan());
        replicate.seed("initial");
        space
            .attach_active(Scope::Personal(EYAL), doc, replicate.clone())
            .unwrap();
        space.timer_tick().unwrap();
        assert_eq!(rice.read("/rice/x").unwrap(), "initial");
    }

    #[test]
    fn shipping_charges_the_wan_link() {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
        let provider = MemoryProvider::new("parc", "draft", 0);
        let doc = space.create_document(EYAL, provider);
        let rice = MemFs::new(clock.clone());
        let replicate = ReplicateTo::new(rice, "/rice/x", wan());
        replicate.seed("payload");
        space
            .attach_active(Scope::Personal(EYAL), doc, replicate)
            .unwrap();
        let t0 = clock.now();
        space.timer_tick().unwrap();
        assert!(clock.now().since(t0) >= 80_000, "WAN RTT charged");
    }
}
