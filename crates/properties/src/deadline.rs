//! Doug's "read by 11/30" property, made active.
//!
//! In Figure 1 the deadline is a static statement. This active variant
//! watches the timer and, once the due instant passes without the owner
//! having read the document, marks the reference with an `overdue` static
//! property (via the follow-up mechanism) — a small demonstration of
//! properties that *react to time* and mutate their own document.

use parking_lot::Mutex;
use placeless_core::content::PropertyValue;
use placeless_core::error::Result;
use placeless_core::event::{DocumentEvent, EventKind, EventSite, Interests};
use placeless_core::id::UserId;
use placeless_core::property::{ActiveProperty, EventCtx, FollowUp, PathCtx, PathReport};
use placeless_core::streams::InputStream;
use placeless_simenv::Instant;
use std::sync::Arc;

/// States the deadline can be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Due in the future, not yet read.
    Pending,
    /// The owner read the document before the deadline.
    Met,
    /// The deadline passed unread; `overdue` has been attached.
    Overdue,
}

/// A read-by deadline on a user's reference.
pub struct Deadline {
    owner: UserId,
    due: Instant,
    state: Mutex<State>,
}

impl Deadline {
    /// Creates a deadline for `owner`, due at `due`.
    pub fn read_by(owner: UserId, due: Instant) -> Arc<Self> {
        Arc::new(Self {
            owner,
            due,
            state: Mutex::new(State::Pending),
        })
    }

    /// Returns `true` if the owner read the document in time.
    pub fn met(&self) -> bool {
        *self.state.lock() == State::Met
    }

    /// Returns `true` if the deadline lapsed unread.
    pub fn overdue(&self) -> bool {
        *self.state.lock() == State::Overdue
    }
}

impl ActiveProperty for Deadline {
    fn name(&self) -> &str {
        "deadline"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[
            EventKind::GetInputStream,
            EventKind::Timer,
            EventKind::CacheRead,
        ])
    }

    fn wrap_input(
        &self,
        ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        // A read by the owner before the due instant meets the deadline.
        let mut state = self.state.lock();
        if *state == State::Pending && ctx.user == self.owner && ctx.clock.now() <= self.due {
            *state = State::Met;
        }
        Ok(inner)
    }

    fn on_event(&self, ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
        match event.kind {
            // Cache-served reads count too (the audit pattern).
            EventKind::CacheRead => {
                let mut state = self.state.lock();
                if *state == State::Pending
                    && event.user == Some(self.owner)
                    && ctx.clock.now() <= self.due
                {
                    *state = State::Met;
                }
            }
            EventKind::Timer => {
                let mut state = self.state.lock();
                if *state == State::Pending && ctx.clock.now() > self.due {
                    *state = State::Overdue;
                    ctx.request(FollowUp::AttachStatic {
                        doc: event.doc,
                        site: EventSite::Reference(self.owner),
                        name: "overdue".to_owned(),
                        value: PropertyValue::Bool(true),
                    });
                }
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::prelude::*;
    use placeless_simenv::{LatencyModel, VirtualClock};

    const DOUG: UserId = UserId(3);
    const EYAL: UserId = UserId(1);

    fn setup() -> (Arc<DocumentSpace>, DocumentId, VirtualClock) {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
        let provider = MemoryProvider::new("paper", "the draft", 0);
        let doc = space.create_document(EYAL, provider);
        space.add_reference(DOUG, doc).unwrap();
        (space, doc, clock)
    }

    #[test]
    fn reading_in_time_meets_the_deadline() {
        let (space, doc, clock) = setup();
        let deadline = Deadline::read_by(DOUG, clock.now().plus(1_000_000));
        space
            .attach_active(Scope::Personal(DOUG), doc, deadline.clone())
            .unwrap();
        let _ = space.read_document(DOUG, doc).unwrap();
        assert!(deadline.met());
        // Ticking past the due date changes nothing.
        clock.advance(2_000_000);
        space.timer_tick().unwrap();
        assert!(!deadline.overdue());
        assert!(space.property_value(DOUG, doc, "overdue").is_none());
    }

    #[test]
    fn lapsing_unread_marks_overdue() {
        let (space, doc, clock) = setup();
        let deadline = Deadline::read_by(DOUG, clock.now().plus(1_000));
        space
            .attach_active(Scope::Personal(DOUG), doc, deadline.clone())
            .unwrap();
        clock.advance(5_000);
        space.timer_tick().unwrap();
        assert!(deadline.overdue());
        assert_eq!(
            space.property_value(DOUG, doc, "overdue"),
            Some(PropertyValue::Bool(true))
        );
    }

    #[test]
    fn other_users_reads_do_not_count() {
        let (space, doc, clock) = setup();
        let deadline = Deadline::read_by(DOUG, clock.now().plus(1_000));
        space
            .attach_active(Scope::Personal(DOUG), doc, deadline.clone())
            .unwrap();
        // Doug's property is personal, so Eyal's read never even reaches
        // it; lapse and confirm overdue.
        let _ = space.read_document(EYAL, doc).unwrap();
        clock.advance(5_000);
        space.timer_tick().unwrap();
        assert!(deadline.overdue());
    }

    #[test]
    fn cache_served_reads_meet_the_deadline_too() {
        let (space, doc, clock) = setup();
        let deadline = Deadline::read_by(DOUG, clock.now().plus(1_000_000));
        space
            .attach_active(Scope::Personal(DOUG), doc, deadline.clone())
            .unwrap();
        // A cache serves Doug locally but forwards the operation event.
        space
            .post_cache_event(DOUG, doc, EventKind::CacheRead)
            .unwrap();
        assert!(deadline.met());
    }

    #[test]
    fn late_reads_do_not_retroactively_meet() {
        let (space, doc, clock) = setup();
        let deadline = Deadline::read_by(DOUG, clock.now().plus(1_000));
        space
            .attach_active(Scope::Personal(DOUG), doc, deadline.clone())
            .unwrap();
        clock.advance(5_000);
        let _ = space.read_document(DOUG, doc).unwrap();
        assert!(!deadline.met(), "read after the due instant");
        space.timer_tick().unwrap();
        assert!(deadline.overdue());
    }
}
