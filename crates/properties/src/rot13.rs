//! A streaming at-rest scrambling property (ROT13).
//!
//! Stands in for an encryption property: content is scrambled on the write
//! path (so the repository stores ciphertext) and unscrambled on the read
//! path. Because ROT13 is an involution, the same byte map serves both
//! directions, and because it is byte-wise it uses the *streaming*
//! (non-buffering) wrappers — exercising the chunked half of the stream
//! machinery.

use placeless_core::error::Result;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, MappingInput, MappingOutput, OutputStream};
use std::sync::Arc;

/// Maps one byte through ROT13 (letters only).
pub fn rot13_byte(b: u8) -> u8 {
    match b {
        b'a'..=b'z' => (b - b'a' + 13) % 26 + b'a',
        b'A'..=b'Z' => (b - b'A' + 13) % 26 + b'A',
        _ => b,
    }
}

/// Scrambles at rest, unscrambles on read.
pub struct Rot13AtRest;

impl Rot13AtRest {
    /// Creates the property.
    pub fn new() -> Arc<Self> {
        Arc::new(Self)
    }
}

impl ActiveProperty for Rot13AtRest {
    fn name(&self) -> &str {
        "rot13-at-rest"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream, EventKind::GetOutputStream])
    }

    fn execution_cost_micros(&self) -> u64 {
        50
    }

    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        Ok(Box::new(MappingInput::new(inner, rot13_byte)))
    }

    fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        // The byte map is fixed: the read transform depends on nothing but
        // its input, so a constant token makes the stage cacheable.
        Some(b"rot13-v1".to_vec())
    }

    fn wrap_output(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn OutputStream>,
    ) -> Result<Box<dyn OutputStream>> {
        Ok(Box::new(MappingOutput::new(inner, rot13_byte)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{read_through, write_through};

    #[test]
    fn byte_map_is_involution() {
        for b in 0..=255u8 {
            assert_eq!(rot13_byte(rot13_byte(b)), b);
        }
    }

    #[test]
    fn scrambles_on_write() {
        let prop = Rot13AtRest::new();
        assert_eq!(write_through(prop, b"Hello, World!"), "Uryyb, Jbeyq!");
    }

    #[test]
    fn unscrambles_on_read() {
        let prop = Rot13AtRest::new();
        assert_eq!(read_through(prop, b"Uryyb, Jbeyq!"), "Hello, World!");
    }

    #[test]
    fn write_then_read_roundtrips() {
        let stored = write_through(Rot13AtRest::new(), b"round trip 123");
        assert_eq!(read_through(Rot13AtRest::new(), &stored), "round trip 123");
    }

    #[test]
    fn non_letters_untouched() {
        let prop = Rot13AtRest::new();
        assert_eq!(read_through(prop, b"123 !@# \n"), "123 !@# \n");
    }

    #[test]
    fn token_is_constant() {
        use crate::testutil::token_with_props;
        let prop = Rot13AtRest::new();
        let token = token_with_props(prop.as_ref(), &[]);
        assert!(token.is_some());
        assert_eq!(token, token_with_props(prop.as_ref(), &[("x", "y")]));
    }
}
