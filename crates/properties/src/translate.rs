//! The "translate to French" property.
//!
//! A word-map translation standing in for the paper's language translation
//! service. The target language can be fixed at attach time or resolved
//! from the document's `preferredLanguage` static property at read time —
//! the latter demonstrates a property depending on *other property values*
//! (changing `preferredLanguage` is then an invalidation cause).

use bytes::Bytes;
use placeless_core::error::Result;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, TransformingInput};
use std::collections::HashMap;
use std::sync::Arc;

/// English → French.
pub const EN_FR: &[(&str, &str)] = &[
    ("the", "le"),
    ("document", "document"),
    ("paper", "papier"),
    ("workshop", "atelier"),
    ("cache", "cache"),
    ("property", "propriété"),
    ("active", "actif"),
    ("draft", "brouillon"),
    ("hello", "bonjour"),
    ("world", "monde"),
    ("budget", "budget"),
    ("and", "et"),
    ("content", "contenu"),
    ("system", "système"),
];

/// English → Spanish.
pub const EN_ES: &[(&str, &str)] = &[
    ("the", "el"),
    ("document", "documento"),
    ("paper", "papel"),
    ("workshop", "taller"),
    ("cache", "caché"),
    ("property", "propiedad"),
    ("active", "activo"),
    ("draft", "borrador"),
    ("hello", "hola"),
    ("world", "mundo"),
    ("budget", "presupuesto"),
    ("and", "y"),
    ("content", "contenido"),
    ("system", "sistema"),
];

/// How the target language is chosen.
enum Target {
    /// Fixed at attach time.
    Fixed(String),
    /// Read from the `preferredLanguage` static property on each path.
    FromProperty,
}

/// Word-map translation on the read path.
pub struct Translate {
    target: Target,
    tables: Arc<HashMap<String, HashMap<String, String>>>,
    cost_micros: u64,
}

fn builtin_tables() -> Arc<HashMap<String, HashMap<String, String>>> {
    let mut tables = HashMap::new();
    for (lang, pairs) in [("fr", EN_FR), ("es", EN_ES)] {
        tables.insert(
            lang.to_owned(),
            pairs
                .iter()
                .map(|&(a, b)| (a.to_owned(), b.to_owned()))
                .collect(),
        );
    }
    Arc::new(tables)
}

impl Translate {
    /// Creates a translator with a fixed target language (`"fr"`, `"es"`).
    pub fn to(language: &str) -> Arc<Self> {
        Arc::new(Self {
            target: Target::Fixed(language.to_owned()),
            tables: builtin_tables(),
            cost_micros: 2_000,
        })
    }

    /// Creates a translator that resolves `preferredLanguage` from the
    /// document's properties at read time.
    pub fn from_preferred_language() -> Arc<Self> {
        Arc::new(Self {
            target: Target::FromProperty,
            tables: builtin_tables(),
            cost_micros: 2_000,
        })
    }

    /// Resolves the target language for one path.
    fn resolved_language(&self, ctx: &PathCtx<'_>) -> String {
        match &self.target {
            Target::Fixed(lang) => lang.clone(),
            Target::FromProperty => ctx
                .props
                .get("preferredLanguage")
                .and_then(|v| v.as_str().map(str::to_owned))
                .unwrap_or_else(|| "en".to_owned()),
        }
    }

    /// Translates a whole buffer to `language`, leaving unknown words
    /// untouched. An unknown language leaves the text unchanged.
    pub fn translate(
        tables: &HashMap<String, HashMap<String, String>>,
        language: &str,
        text: &[u8],
    ) -> Bytes {
        let Some(table) = tables.get(language) else {
            return Bytes::copy_from_slice(text);
        };
        let text = String::from_utf8_lossy(text);
        let mut out = String::with_capacity(text.len());
        let mut word = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() || ch == '\'' {
                word.push(ch);
            } else {
                flush(table, &mut out, &mut word);
                out.push(ch);
            }
        }
        flush(table, &mut out, &mut word);
        Bytes::from(out)
    }
}

fn flush(table: &HashMap<String, String>, out: &mut String, word: &mut String) {
    if word.is_empty() {
        return;
    }
    match table.get(&word.to_lowercase()) {
        Some(t) => out.push_str(t),
        None => out.push_str(word),
    }
    word.clear();
}

impl ActiveProperty for Translate {
    fn name(&self) -> &str {
        "translate"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }

    fn execution_cost_micros(&self) -> u64 {
        self.cost_micros
    }

    fn wrap_input(
        &self,
        ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        let language = self.resolved_language(ctx);
        let tables = self.tables.clone();
        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(move |bytes| Ok(Self::translate(&tables, &language, &bytes))),
        )))
    }

    fn transform_token(&self, ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        // The output depends only on the resolved target language (the
        // word tables are built in), so the token is that language — which
        // also means a fixed-target translator and a preference-resolved
        // one share stage entries when they agree. A changed
        // `preferredLanguage` yields a new token, so the old stage entry
        // simply stops being addressed: invalidation by construction.
        let language = self.resolved_language(ctx);
        let mut token = b"translate-v1:".to_vec();
        token.extend_from_slice(language.as_bytes());
        Some(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::read_through;
    use placeless_core::property::PropsSnapshot;
    use placeless_core::streams::{read_all, MemoryInput};

    #[test]
    fn translates_to_french() {
        let prop = Translate::to("fr");
        assert_eq!(
            read_through(prop, b"hello world, the workshop paper"),
            "bonjour monde, le atelier papier"
        );
    }

    #[test]
    fn translates_to_spanish() {
        let prop = Translate::to("es");
        assert_eq!(read_through(prop, b"hello world"), "hola mundo");
    }

    #[test]
    fn unknown_language_is_identity() {
        let prop = Translate::to("klingon");
        assert_eq!(read_through(prop, b"hello world"), "hello world");
    }

    #[test]
    fn unknown_words_pass_through() {
        let prop = Translate::to("fr");
        assert_eq!(read_through(prop, b"hello xyzzy"), "bonjour xyzzy");
    }

    #[test]
    fn resolves_preferred_language_from_properties() {
        use placeless_core::event::EventSite;
        use placeless_core::id::{DocumentId, UserId};
        use placeless_core::property::{PathCtx, PathReport};
        use placeless_simenv::VirtualClock;

        let prop = Translate::from_preferred_language();
        let clock = VirtualClock::new();
        let snap = PropsSnapshot::from_pairs(vec![("preferredLanguage".to_owned(), "es".into())]);
        let ctx = PathCtx {
            clock: &clock,
            doc: DocumentId(1),
            user: UserId(1),
            site: EventSite::Reference(UserId(1)),
            props: &snap,
        };
        let mut report = PathReport::default();
        let inner = Box::new(MemoryInput::new(Bytes::from_static(b"hello world")));
        let mut wrapped = prop.wrap_input(&ctx, &mut report, inner).unwrap();
        assert_eq!(read_all(wrapped.as_mut()).unwrap(), "hola mundo");
    }

    #[test]
    fn no_preference_means_no_translation() {
        let prop = Translate::from_preferred_language();
        assert_eq!(read_through(prop, b"hello world"), "hello world");
    }

    #[test]
    fn token_tracks_resolved_language() {
        use crate::testutil::token_with_props;

        let fixed_fr = Translate::to("fr");
        let fixed_es = Translate::to("es");
        let preferred = Translate::from_preferred_language();

        // Different targets re-key the stage.
        assert_ne!(
            token_with_props(fixed_fr.as_ref(), &[]),
            token_with_props(fixed_es.as_ref(), &[])
        );
        // A fixed target and a matching preference share the token (and
        // hence the stage entry).
        assert_eq!(
            token_with_props(fixed_es.as_ref(), &[]),
            token_with_props(preferred.as_ref(), &[("preferredLanguage", "es")])
        );
        // Changing the preference changes the token.
        assert_ne!(
            token_with_props(preferred.as_ref(), &[("preferredLanguage", "es")]),
            token_with_props(preferred.as_ref(), &[("preferredLanguage", "fr")])
        );
    }
}
