//! The versioning property from the paper's running example.
//!
//! A universal property on the base document that "saves an old version of
//! the paper each time someone opens it for writing": it tees the write
//! path to capture each committed revision in its version store, and after
//! the write completes it links the snapshot into the document by attaching
//! a `version:N` static property to the base (via the follow-up mechanism —
//! properties may not mutate documents mid-dispatch).

use bytes::Bytes;
use parking_lot::Mutex;
use placeless_core::content::PropertyValue;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::event::{DocumentEvent, EventKind, EventSite, Interests};
use placeless_core::property::{ActiveProperty, EventCtx, FollowUp, PathCtx, PathReport};
use placeless_core::streams::OutputStream;
use std::sync::Arc;

/// Saves a version of the content on every write.
pub struct Versioning {
    versions: Arc<Mutex<Vec<Bytes>>>,
}

impl Versioning {
    /// Creates an empty version store.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            versions: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Returns the saved versions, oldest first.
    pub fn versions(&self) -> Vec<Bytes> {
        self.versions.lock().clone()
    }

    /// Returns the number of saved versions.
    pub fn version_count(&self) -> usize {
        self.versions.lock().len()
    }
}

impl ActiveProperty for Versioning {
    fn name(&self) -> &str {
        "versioning"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetOutputStream, EventKind::ContentWritten])
    }

    fn execution_cost_micros(&self) -> u64 {
        800
    }

    fn wrap_output(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn OutputStream>,
    ) -> Result<Box<dyn OutputStream>> {
        Ok(Box::new(VersionTee {
            inner: Some(inner),
            buf: Vec::new(),
            versions: self.versions.clone(),
        }))
    }

    fn on_event(&self, ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
        if event.kind != EventKind::ContentWritten {
            return Ok(());
        }
        // The tee already captured the new revision (write-path wrappers
        // close before ContentWritten fires); link it into the document.
        let versions = self.versions.lock();
        if let Some(snapshot) = versions.last() {
            ctx.request(FollowUp::AttachStatic {
                doc: event.doc,
                site: EventSite::Base,
                name: format!("version:{}", versions.len()),
                value: PropertyValue::Blob(snapshot.clone()),
            });
        }
        Ok(())
    }
}

/// Pass-through output that snapshots the full content on close.
struct VersionTee {
    inner: Option<Box<dyn OutputStream>>,
    buf: Vec<u8>,
    versions: Arc<Mutex<Vec<Bytes>>>,
}

impl OutputStream for VersionTee {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        let inner = self.inner.as_mut().ok_or(PlacelessError::StreamClosed)?;
        placeless_core::streams::write_all(inner.as_mut(), buf)?;
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn close(&mut self) -> Result<()> {
        let mut inner = self.inner.take().ok_or(PlacelessError::StreamClosed)?;
        self.versions
            .lock()
            .push(Bytes::from(std::mem::take(&mut self.buf)));
        inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::prelude::*;
    use placeless_simenv::{LatencyModel, VirtualClock};

    const ALICE: UserId = UserId(1);

    #[test]
    fn each_write_saves_a_version() {
        let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
        let provider = MemoryProvider::new("t", "original", 0);
        let doc = space.create_document(ALICE, provider);
        let versioning = Versioning::new();
        space
            .attach_active(Scope::Universal, doc, versioning.clone())
            .unwrap();
        space.write_document(ALICE, doc, b"draft 1").unwrap();
        space.write_document(ALICE, doc, b"draft 2").unwrap();
        assert_eq!(versioning.versions(), vec!["draft 1", "draft 2"]);
    }

    #[test]
    fn versions_are_linked_as_static_properties() {
        let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
        let provider = MemoryProvider::new("t", "original", 0);
        let doc = space.create_document(ALICE, provider);
        space
            .attach_active(Scope::Universal, doc, Versioning::new())
            .unwrap();
        space.write_document(ALICE, doc, b"draft 1").unwrap();
        let link = space.property_value(ALICE, doc, "version:1").unwrap();
        match link {
            PropertyValue::Blob(b) => assert_eq!(b, "draft 1"),
            other => panic!("expected blob link, got {other:?}"),
        }
        space.write_document(ALICE, doc, b"draft 2").unwrap();
        assert!(space.property_value(ALICE, doc, "version:2").is_some());
    }

    #[test]
    fn reads_do_not_create_versions() {
        let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
        let provider = MemoryProvider::new("t", "original", 0);
        let doc = space.create_document(ALICE, provider);
        let versioning = Versioning::new();
        space
            .attach_active(Scope::Universal, doc, versioning.clone())
            .unwrap();
        let _ = space.read_document(ALICE, doc).unwrap();
        assert_eq!(versioning.version_count(), 0);
    }
}
