//! Registration of the standard property kinds.
//!
//! [`register_standard`] populates a [`PropertyRegistry`] with every
//! self-contained property in this crate, so documents can be personalized
//! at runtime by *name + parameters* — data, not code. Properties that need
//! environment handles (replication targets, portfolio sources) are
//! constructed directly instead.

use crate::compress::CompressAtRest;
use crate::markers::{TtlProperty, UncacheableMarker, Watermark};
use crate::notifiers::{ContentWriteNotifier, PropertyChangeNotifier};
use crate::rot13::Rot13AtRest;
use crate::spellcheck::SpellCheck;
use crate::summarize::Summarize;
use crate::translate::Translate;
use placeless_core::error::PlacelessError;
use placeless_core::id::UserId;
use placeless_core::qos::QosProperty;
use placeless_core::registry::PropertyRegistry;

/// Registers the standard property kinds under their conventional names.
///
/// | Kind | Parameters |
/// |---|---|
/// | `spell-corrector` | — |
/// | `translate` | `language` (string, default from `preferredLanguage`) |
/// | `summarize` | `sentences` (int, default 3) |
/// | `rot13-at-rest` | — |
/// | `compress-at-rest` | — |
/// | `watermark` | — |
/// | `uncacheable` | — |
/// | `ttl` | `micros` (int, required) |
/// | `qos` | `factor` (float) or `bound_micros` + `refetch_micros` |
/// | `notify-on-write` | `except_user` (int, optional) |
/// | `notify-on-property-change` | — |
pub fn register_standard(registry: &PropertyRegistry) {
    registry.register("spell-corrector", |_| Ok(SpellCheck::new()));

    registry.register("translate", |params| {
        Ok(match params.get_str("language") {
            Some(language) => Translate::to(language),
            None => Translate::from_preferred_language(),
        })
    });

    registry.register("summarize", |params| {
        let sentences = params.get_int("sentences").unwrap_or(3);
        if sentences < 1 {
            return Err(PlacelessError::BadPropertyParams(
                "`sentences` must be >= 1".to_owned(),
            ));
        }
        Ok(Summarize::first_sentences(sentences as usize))
    });

    registry.register("rot13-at-rest", |_| Ok(Rot13AtRest::new()));
    registry.register("compress-at-rest", |_| Ok(CompressAtRest::new()));
    registry.register("watermark", |_| Ok(Watermark::new()));
    registry.register("uncacheable", |_| Ok(UncacheableMarker::new()));

    registry.register("ttl", |params| {
        let micros = params
            .get_int("micros")
            .ok_or_else(|| PlacelessError::BadPropertyParams("`micros` is required".to_owned()))?;
        if micros < 0 {
            return Err(PlacelessError::BadPropertyParams(
                "`micros` must be non-negative".to_owned(),
            ));
        }
        Ok(TtlProperty::new(micros as u64))
    });

    registry.register("qos", |params| {
        if let Some(factor) = params.get_float("factor") {
            return Ok(QosProperty::with_factor("qos", factor));
        }
        match (
            params.get_int("bound_micros"),
            params.get_int("refetch_micros"),
        ) {
            (Some(bound), Some(refetch)) if bound >= 0 && refetch >= 0 => {
                Ok(QosProperty::access_time_bound(bound as u64, refetch as u64))
            }
            _ => Err(PlacelessError::BadPropertyParams(
                "need `factor` or `bound_micros` + `refetch_micros`".to_owned(),
            )),
        }
    });

    registry.register("notify-on-write", |params| {
        Ok(match params.get_int("except_user") {
            Some(user) => ContentWriteNotifier::except(UserId(user as u64)),
            None => ContentWriteNotifier::any(),
        })
    });

    registry.register("notify-on-property-change", |_| {
        Ok(PropertyChangeNotifier::any())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::content::Params;

    #[test]
    fn all_standard_kinds_register() {
        let registry = PropertyRegistry::new();
        register_standard(&registry);
        for kind in [
            "spell-corrector",
            "translate",
            "summarize",
            "rot13-at-rest",
            "compress-at-rest",
            "watermark",
            "uncacheable",
            "ttl",
            "qos",
            "notify-on-write",
            "notify-on-property-change",
        ] {
            assert!(registry.knows(kind), "missing {kind}");
        }
    }

    #[test]
    fn parameterized_instantiation() {
        let registry = PropertyRegistry::new();
        register_standard(&registry);
        let translate = registry
            .instantiate("translate", &Params::new().with("language", "fr"))
            .unwrap();
        assert_eq!(translate.name(), "translate");
        let summarize = registry
            .instantiate("summarize", &Params::new().with("sentences", 5i64))
            .unwrap();
        assert_eq!(summarize.name(), "summarize");
    }

    #[test]
    fn bad_parameters_are_rejected() {
        let registry = PropertyRegistry::new();
        register_standard(&registry);
        assert!(registry
            .instantiate("summarize", &Params::new().with("sentences", 0i64))
            .is_err());
        assert!(registry.instantiate("ttl", &Params::new()).is_err());
        assert!(registry
            .instantiate("ttl", &Params::new().with("micros", -5i64))
            .is_err());
        assert!(registry.instantiate("qos", &Params::new()).is_err());
    }

    #[test]
    fn qos_both_forms() {
        let registry = PropertyRegistry::new();
        register_standard(&registry);
        assert!(registry
            .instantiate("qos", &Params::new().with("factor", 3.0))
            .is_ok());
        assert!(registry
            .instantiate(
                "qos",
                &Params::new()
                    .with("bound_micros", 25_000i64)
                    .with("refetch_micros", 250_000i64)
            )
            .is_ok());
    }
}
