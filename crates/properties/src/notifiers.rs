//! The standard notifier properties.
//!
//! "Notifiers are active properties themselves": they register for the
//! mutation events under Placeless control and post invalidations to the
//! bus the caches subscribe to. The three from the paper's HotOS-draft
//! walkthrough are here:
//!
//! * [`ContentWriteNotifier`] — at the base, "invalidate the cache if the
//!   file is opened for writing by another user";
//! * [`PropertyChangeNotifier`] — at the base or a reference, "tracks any
//!   additions or deletions of active properties that could modify the
//!   content" (plus modifications and reorders, causes 2 and 3);
//! * [`ExternalChangeNotifier`] — timer-polls external sources a property
//!   depends on (cause 4, handled notifier-side instead of verifier-side —
//!   the §5 trade-off).

use parking_lot::Mutex;
use placeless_core::error::Result;
use placeless_core::event::{DocumentEvent, EventKind, EventSite, Interests};
use placeless_core::external::ExternalSource;
use placeless_core::id::UserId;
use placeless_core::notifier::Invalidation;
use placeless_core::property::{ActiveProperty, EventCtx};
use std::sync::Arc;

/// Invalidates all cached versions of a document when its content is
/// written through Placeless.
pub struct ContentWriteNotifier {
    /// When set, writes *by this user* do not notify (their own cache
    /// handles their writes locally).
    except: Option<UserId>,
}

impl ContentWriteNotifier {
    /// Notifies on every write.
    pub fn any() -> Arc<Self> {
        Arc::new(Self { except: None })
    }

    /// Notifies on writes by anyone except `user`.
    pub fn except(user: UserId) -> Arc<Self> {
        Arc::new(Self { except: Some(user) })
    }
}

impl ActiveProperty for ContentWriteNotifier {
    fn name(&self) -> &str {
        "notify-on-write"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::ContentWritten])
    }

    fn on_event(&self, ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
        if event.kind != EventKind::ContentWritten {
            return Ok(());
        }
        // Semantic-callback predicate: skip the excepted writer.
        if self.except.is_some() && event.user == self.except {
            return Ok(());
        }
        ctx.bus.post(Invalidation::Document(event.doc));
        Ok(())
    }
}

/// Invalidates cached versions when properties that could change content
/// are added, removed, modified, or reordered.
///
/// Scope-aware: a base-site mutation affects every user's version; a
/// reference-site mutation affects only that user's version.
pub struct PropertyChangeNotifier {
    /// When non-empty, only mutations of properties with these names
    /// trigger invalidation (content-affecting properties only).
    watching: Vec<String>,
    /// Names this notifier never reacts to (its own, typically).
    ignored: Vec<String>,
}

impl PropertyChangeNotifier {
    /// Notifies on any property mutation (except other notifiers).
    pub fn any() -> Arc<Self> {
        Arc::new(Self {
            watching: Vec::new(),
            ignored: Self::default_ignored(),
        })
    }

    /// Notifies only on mutations of the named properties.
    pub fn watching(names: &[&str]) -> Arc<Self> {
        Arc::new(Self {
            watching: names.iter().map(|s| s.to_string()).collect(),
            ignored: Self::default_ignored(),
        })
    }

    fn default_ignored() -> Vec<String> {
        vec![
            "notify-on-write".to_owned(),
            "notify-on-property-change".to_owned(),
            "notify-on-external-change".to_owned(),
            // Collection membership labels documents but never changes
            // their content.
            "collection".to_owned(),
        ]
    }
}

impl ActiveProperty for PropertyChangeNotifier {
    fn name(&self) -> &str {
        "notify-on-property-change"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[
            EventKind::PropertySet,
            EventKind::PropertyRemoved,
            EventKind::PropertyModified,
            EventKind::PropertyReordered,
        ])
    }

    fn on_event(&self, ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
        let name = event.property_name.as_deref().unwrap_or("");
        if self.ignored.iter().any(|i| i == name) {
            return Ok(());
        }
        if !self.watching.is_empty() && !self.watching.iter().any(|w| w == name) {
            return Ok(());
        }
        let invalidation = match event.site {
            Some(EventSite::Reference(user)) => Invalidation::UserDocument(event.doc, user),
            _ => Invalidation::Document(event.doc),
        };
        ctx.bus.post(invalidation);
        Ok(())
    }
}

/// Timer-polls external sources and invalidates the document when any of
/// them changed — the notifier-side answer to cause 4.
pub struct ExternalChangeNotifier {
    sources: Vec<Arc<dyn ExternalSource>>,
    seen: Mutex<Vec<u64>>,
}

impl ExternalChangeNotifier {
    /// Creates a notifier over `sources`, pinned to their current epochs.
    pub fn over(sources: Vec<Arc<dyn ExternalSource>>) -> Arc<Self> {
        let seen = sources.iter().map(|s| s.epoch()).collect();
        Arc::new(Self {
            sources,
            seen: Mutex::new(seen),
        })
    }
}

impl ActiveProperty for ExternalChangeNotifier {
    fn name(&self) -> &str {
        "notify-on-external-change"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::Timer])
    }

    fn execution_cost_micros(&self) -> u64 {
        // Each poll of the external sources costs something on the
        // middleware side; this is the "load" half of the trade-off.
        50 * self.sources.len() as u64
    }

    fn on_event(&self, ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
        if event.kind != EventKind::Timer {
            return Ok(());
        }
        let mut seen = self.seen.lock();
        let mut changed = false;
        for (pinned, source) in seen.iter_mut().zip(&self.sources) {
            let now = source.epoch();
            if now != *pinned {
                *pinned = now;
                changed = true;
            }
        }
        if changed {
            ctx.bus.post(Invalidation::Document(event.doc));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::prelude::*;
    use placeless_simenv::{LatencyModel, VirtualClock};

    const ALICE: UserId = UserId(1);
    const BOB: UserId = UserId(2);

    fn setup() -> (Arc<DocumentSpace>, DocumentId) {
        let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
        let provider = MemoryProvider::new("t", "content", 0);
        let doc = space.create_document(ALICE, provider);
        space.add_reference(BOB, doc).unwrap();
        (space, doc)
    }

    #[test]
    fn write_notifier_fires_on_any_write() {
        let (space, doc) = setup();
        space
            .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
            .unwrap();
        space.write_document(ALICE, doc, b"new").unwrap();
        assert_eq!(space.bus().counters().0, 1);
    }

    #[test]
    fn write_notifier_except_skips_owner() {
        let (space, doc) = setup();
        space
            .attach_active(Scope::Universal, doc, ContentWriteNotifier::except(ALICE))
            .unwrap();
        space.write_document(ALICE, doc, b"own write").unwrap();
        assert_eq!(space.bus().counters().0, 0, "owner's write is silent");
        space.write_document(BOB, doc, b"other write").unwrap();
        assert_eq!(space.bus().counters().0, 1, "other user's write notifies");
    }

    #[test]
    fn property_change_notifier_scopes_invalidations() {
        use parking_lot::Mutex as PMutex;
        struct Capture(PMutex<Vec<Invalidation>>);
        impl placeless_core::notifier::InvalidationSink for Capture {
            fn cache_id(&self) -> CacheId {
                CacheId(99)
            }
            fn invalidate(&self, inv: &Invalidation) {
                self.0.lock().push(*inv);
            }
        }
        let (space, doc) = setup();
        let sink = Arc::new(Capture(PMutex::new(Vec::new())));
        space.bus().subscribe(sink.clone());
        space
            .attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())
            .unwrap();
        // Personal attach: user-scoped invalidation.
        space
            .attach_static(Scope::Personal(BOB), doc, "label", "x")
            .unwrap();
        // Universal attach: document-wide invalidation.
        space
            .attach_static(Scope::Universal, doc, "public", "y")
            .unwrap();
        let seen = sink.0.lock().clone();
        assert_eq!(
            seen,
            vec![
                Invalidation::UserDocument(doc, BOB),
                Invalidation::Document(doc),
            ]
        );
    }

    #[test]
    fn property_change_notifier_ignores_other_notifiers() {
        let (space, doc) = setup();
        space
            .attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())
            .unwrap();
        space
            .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
            .unwrap();
        assert_eq!(
            space.bus().counters().0,
            0,
            "attaching a notifier must not invalidate"
        );
    }

    #[test]
    fn watch_list_filters_by_name() {
        let (space, doc) = setup();
        space
            .attach_active(
                Scope::Universal,
                doc,
                PropertyChangeNotifier::watching(&["translate"]),
            )
            .unwrap();
        space
            .attach_static(Scope::Universal, doc, "harmless-label", "x")
            .unwrap();
        assert_eq!(space.bus().counters().0, 0);
        space
            .attach_static(Scope::Universal, doc, "translate", "fr")
            .unwrap();
        assert_eq!(space.bus().counters().0, 1);
    }

    #[test]
    fn external_change_notifier_polls_on_timer() {
        let (space, doc) = setup();
        let quotes = SimpleExternal::new("stock:XRX", "42.50");
        space
            .attach_active(
                Scope::Universal,
                doc,
                ExternalChangeNotifier::over(vec![quotes.clone()]),
            )
            .unwrap();
        space.timer_tick().unwrap();
        assert_eq!(space.bus().counters().0, 0, "no change, no invalidation");
        quotes.set("43.00");
        space.timer_tick().unwrap();
        assert_eq!(space.bus().counters().0, 1);
        space.timer_tick().unwrap();
        assert_eq!(space.bus().counters().0, 1, "epoch re-pinned after firing");
    }
}
