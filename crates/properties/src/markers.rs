//! Small marker and helper properties: uncacheable, TTL, watermark.

use bytes::Bytes;
use placeless_core::cacheability::Cacheability;
use placeless_core::error::Result;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, TransformingInput};
use placeless_core::verifier::TtlVerifier;
use std::sync::Arc;

/// Marks a document's content uncacheable regardless of its source.
pub struct UncacheableMarker;

impl UncacheableMarker {
    /// Creates the marker.
    pub fn new() -> Arc<Self> {
        Arc::new(Self)
    }
}

impl ActiveProperty for UncacheableMarker {
    fn name(&self) -> &str {
        "uncacheable"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }

    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        report.vote(Cacheability::Uncacheable);
        Ok(inner)
    }
}

/// Attaches a TTL verifier to every read, bounding staleness even for
/// repositories with no consistency mechanism at all.
pub struct TtlProperty {
    ttl_micros: u64,
}

impl TtlProperty {
    /// Creates a TTL property granting `ttl_micros` of freshness per fill.
    pub fn new(ttl_micros: u64) -> Arc<Self> {
        Arc::new(Self { ttl_micros })
    }
}

impl ActiveProperty for TtlProperty {
    fn name(&self) -> &str {
        "ttl"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }

    fn wrap_input(
        &self,
        ctx: &PathCtx<'_>,
        report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        report.add_verifier(TtlVerifier::for_ttl(ctx.clock.now(), self.ttl_micros));
        Ok(inner)
    }
}

/// Prepends a per-user watermark line on the read path, making each user's
/// view distinct (and therefore unshareable in the cache — the sharing
/// benchmark's counterpoint).
pub struct Watermark;

impl Watermark {
    /// Creates the watermark property.
    pub fn new() -> Arc<Self> {
        Arc::new(Self)
    }
}

impl ActiveProperty for Watermark {
    fn name(&self) -> &str {
        "watermark"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }

    fn execution_cost_micros(&self) -> u64 {
        30
    }

    fn wrap_input(
        &self,
        ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        let line = format!("[licensed to {}]\n", ctx.user);
        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(move |bytes| {
                let mut out = Vec::with_capacity(line.len() + bytes.len());
                out.extend_from_slice(line.as_bytes());
                out.extend_from_slice(&bytes);
                Ok(Bytes::from(out))
            }),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{read_through, read_through_with_report};
    use placeless_core::verifier::Validity;
    use placeless_simenv::VirtualClock;

    #[test]
    fn uncacheable_marker_votes() {
        let (_bytes, report) = read_through_with_report(UncacheableMarker::new(), b"x");
        assert_eq!(report.cacheability, Cacheability::Uncacheable);
    }

    #[test]
    fn ttl_property_ships_a_verifier() {
        let (_bytes, report) = read_through_with_report(TtlProperty::new(5_000), b"x");
        assert_eq!(report.verifiers.len(), 1);
        let clock = VirtualClock::new();
        assert_eq!(report.verifiers[0].check(&clock), Validity::Valid);
        clock.advance(5_001);
        assert_eq!(report.verifiers[0].check(&clock), Validity::Invalid);
    }

    #[test]
    fn watermark_prepends_user_line() {
        let out = read_through(Watermark::new(), b"body");
        assert_eq!(out, "[licensed to user-1]\nbody");
    }
}
