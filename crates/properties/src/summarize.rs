//! The "summary" property: returns a condensed version of the document.
//!
//! "A summary property may return a condensed version of the document
//! instead of its original in full length." The condensation keeps the
//! first `n` sentences.

use bytes::Bytes;
use placeless_core::error::Result;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, TransformingInput};
use std::sync::Arc;

/// First-`n`-sentences summarization on the read path.
pub struct Summarize {
    sentences: usize,
    cost_micros: u64,
}

impl Summarize {
    /// Creates a summarizer keeping the first `sentences` sentences.
    pub fn first_sentences(sentences: usize) -> Arc<Self> {
        Arc::new(Self {
            sentences: sentences.max(1),
            cost_micros: 1_500,
        })
    }

    /// Condenses a buffer to the first `n` sentences.
    pub fn condense(n: usize, text: &[u8]) -> Bytes {
        let text = String::from_utf8_lossy(text);
        let mut out = String::new();
        let mut count = 0;
        for ch in text.chars() {
            out.push(ch);
            if matches!(ch, '.' | '!' | '?') {
                count += 1;
                if count >= n {
                    break;
                }
            }
        }
        Bytes::from(out)
    }
}

impl ActiveProperty for Summarize {
    fn name(&self) -> &str {
        "summarize"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }

    fn execution_cost_micros(&self) -> u64 {
        self.cost_micros
    }

    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        let n = self.sentences;
        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(move |bytes| Ok(Self::condense(n, &bytes))),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::read_through;

    #[test]
    fn keeps_first_sentences() {
        let prop = Summarize::first_sentences(2);
        assert_eq!(read_through(prop, b"One. Two! Three? Four."), "One. Two!");
    }

    #[test]
    fn shorter_text_is_unchanged() {
        let prop = Summarize::first_sentences(5);
        assert_eq!(read_through(prop, b"Only one."), "Only one.");
        let prop = Summarize::first_sentences(5);
        assert_eq!(read_through(prop, b"no terminator"), "no terminator");
    }

    #[test]
    fn zero_clamps_to_one() {
        let prop = Summarize::first_sentences(0);
        assert_eq!(read_through(prop, b"A. B."), "A.");
    }

    #[test]
    fn read_path_only() {
        let prop = Summarize::first_sentences(1);
        assert!(prop.interests().contains(EventKind::GetInputStream));
        assert!(!prop.interests().contains(EventKind::GetOutputStream));
    }
}
