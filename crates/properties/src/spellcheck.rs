//! The spelling-corrector property from the paper's running example.
//!
//! Eyal, not a native English speaker, attaches a personal property that
//! corrects the paper's spelling. It registers for both `getInputStream`
//! and `getOutputStream` (as in Figure 2) and rewrites known misspellings
//! word by word, preserving capitalization of the first letter.

use bytes::Bytes;
use placeless_core::error::Result;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, OutputStream, TransformingInput, TransformingOutput};
use std::collections::HashMap;
use std::sync::Arc;

/// The default dictionary of misspelling → correction pairs.
pub const DEFAULT_DICTIONARY: &[(&str, &str)] = &[
    ("teh", "the"),
    ("recieve", "receive"),
    ("adress", "address"),
    ("seperate", "separate"),
    ("definately", "definitely"),
    ("occured", "occurred"),
    ("untill", "until"),
    ("wich", "which"),
    ("goverment", "government"),
    ("enviroment", "environment"),
];

/// Dictionary-based spelling correction on the read and write paths.
pub struct SpellCheck {
    dictionary: Arc<HashMap<String, String>>,
    cost_micros: u64,
}

impl SpellCheck {
    /// Creates a corrector with the default dictionary.
    pub fn new() -> Arc<Self> {
        Self::with_dictionary(DEFAULT_DICTIONARY.iter().map(|&(a, b)| (a, b)))
    }

    /// Creates a corrector with a custom dictionary.
    pub fn with_dictionary<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Arc<Self> {
        Arc::new(Self {
            dictionary: Arc::new(
                pairs
                    .into_iter()
                    .map(|(a, b)| (a.to_lowercase(), b.to_owned()))
                    .collect(),
            ),
            cost_micros: 400,
        })
    }

    /// Corrects a whole buffer.
    pub fn correct(dictionary: &HashMap<String, String>, text: &[u8]) -> Bytes {
        let text = String::from_utf8_lossy(text);
        let mut out = String::with_capacity(text.len());
        let mut word = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() || ch == '\'' {
                word.push(ch);
            } else {
                flush_word(dictionary, &mut out, &mut word);
                out.push(ch);
            }
        }
        flush_word(dictionary, &mut out, &mut word);
        Bytes::from(out)
    }

    fn transform(&self) -> impl FnOnce(Bytes) -> Result<Bytes> + Send + 'static {
        let dictionary = self.dictionary.clone();
        move |bytes| Ok(Self::correct(&dictionary, &bytes))
    }
}

fn flush_word(dictionary: &HashMap<String, String>, out: &mut String, word: &mut String) {
    if word.is_empty() {
        return;
    }
    let lower = word.to_lowercase();
    match dictionary.get(&lower) {
        Some(fix) => {
            // Preserve a leading capital.
            if word.chars().next().is_some_and(|c| c.is_uppercase()) {
                let mut chars = fix.chars();
                if let Some(first) = chars.next() {
                    out.extend(first.to_uppercase());
                    out.push_str(chars.as_str());
                }
            } else {
                out.push_str(fix);
            }
        }
        None => out.push_str(word),
    }
    word.clear();
}

impl ActiveProperty for SpellCheck {
    fn name(&self) -> &str {
        "spell-corrector"
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream, EventKind::GetOutputStream])
    }

    fn execution_cost_micros(&self) -> u64 {
        self.cost_micros
    }

    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(self.transform()),
        )))
    }

    fn wrap_output(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn OutputStream>,
    ) -> Result<Box<dyn OutputStream>> {
        Ok(Box::new(TransformingOutput::new(
            inner,
            Box::new(self.transform()),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{read_through, write_through};

    #[test]
    fn corrects_known_misspellings() {
        let prop = SpellCheck::new();
        let out = read_through(prop, b"teh draft, recieve teh adress");
        assert_eq!(out, "the draft, receive the address");
    }

    #[test]
    fn preserves_leading_capitals() {
        let prop = SpellCheck::new();
        assert_eq!(
            read_through(prop, b"Teh end. Wich one?"),
            "The end. Which one?"
        );
    }

    #[test]
    fn leaves_unknown_words_alone() {
        let prop = SpellCheck::new();
        assert_eq!(
            read_through(prop, b"placeless documents 1999"),
            "placeless documents 1999"
        );
    }

    #[test]
    fn does_not_correct_inside_words() {
        let prop = SpellCheck::new();
        // "tehran" contains "teh" but is one word.
        assert_eq!(read_through(prop, b"tehran"), "tehran");
    }

    #[test]
    fn corrects_on_write_path_too() {
        let prop = SpellCheck::new();
        assert_eq!(write_through(prop, b"untill now"), "until now");
    }

    #[test]
    fn custom_dictionary() {
        let prop = SpellCheck::with_dictionary([("colour", "color")]);
        assert_eq!(read_through(prop, b"colour me Colour"), "color me Color");
    }

    #[test]
    fn registers_for_both_paths() {
        let prop = SpellCheck::new();
        assert!(prop.interests().contains(EventKind::GetInputStream));
        assert!(prop.interests().contains(EventKind::GetOutputStream));
        assert!(prop.execution_cost_micros() > 0);
    }
}
