//! Document lifecycle and write-back collaboration: deletes and reference
//! removals propagate to caches; write-path properties demand per-write
//! events from write-back caches.

use parking_lot::Mutex;
use placeless::prelude::*;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, EventCtx};
use placeless_simenv::LatencyModel;
use std::sync::Arc;

const ALICE: UserId = UserId(1);
const BOB: UserId = UserId(2);

fn quiet() -> CacheConfig {
    CacheConfig {
        local_latency: LatencyModel::FREE,
        ..CacheConfig::default()
    }
}

#[test]
fn delete_document_purges_every_cache() {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("d", "content", 100);
    let doc = space.create_document(ALICE, provider);
    space.add_reference(BOB, doc).unwrap();
    let cache_a = DocumentCache::new(space.clone(), quiet());
    let cache_b = DocumentCache::new(space.clone(), quiet());
    cache_a.read(ALICE, doc).unwrap();
    cache_b.read(BOB, doc).unwrap();

    space.delete_document(doc).unwrap();
    assert!(cache_a.is_empty(), "deletion invalidated cache A");
    assert!(cache_b.is_empty(), "deletion invalidated cache B");
    assert!(cache_a.read(ALICE, doc).is_err(), "document is gone");
}

#[test]
fn remove_reference_purges_only_that_user() {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("d", "content", 100);
    let doc = space.create_document(ALICE, provider);
    space.add_reference(BOB, doc).unwrap();
    let cache = DocumentCache::new(space.clone(), quiet());
    cache.read(ALICE, doc).unwrap();
    cache.read(BOB, doc).unwrap();

    space.remove_reference(BOB, doc).unwrap();
    assert!(cache.contains(ALICE, doc));
    assert!(!cache.contains(BOB, doc));
    assert!(cache.read(BOB, doc).is_err());
    assert_eq!(cache.read(ALICE, doc).unwrap(), "content");
}

/// A property that must see every individual write (a write-audit trail).
struct WriteAudit {
    writes_seen: Arc<Mutex<u64>>,
}

impl ActiveProperty for WriteAudit {
    fn name(&self) -> &str {
        "write-audit"
    }
    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetOutputStream, EventKind::CacheWrite])
    }
    fn write_cacheability(&self) -> Cacheability {
        // "Some may want to know exactly when each write-operation occurs."
        Cacheability::CacheableWithEvents
    }
    fn on_event(&self, _ctx: &EventCtx<'_>, event: &DocumentEvent) -> Result<()> {
        if event.kind == EventKind::CacheWrite {
            *self.writes_seen.lock() += 1;
        }
        Ok(())
    }
}

#[test]
fn write_back_forwards_events_when_a_property_demands_them() {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("d", "v0", 100);
    let doc = space.create_document(ALICE, provider.clone());
    let writes_seen = Arc::new(Mutex::new(0u64));
    space
        .attach_active(
            Scope::Universal,
            doc,
            Arc::new(WriteAudit {
                writes_seen: writes_seen.clone(),
            }),
        )
        .unwrap();
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            write_mode: WriteMode::Back,
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    // Three buffered writes: nothing reaches the provider, but the audit
    // property hears about each one through forwarded CacheWrite events.
    cache.write(ALICE, doc, b"v1").unwrap();
    cache.write(ALICE, doc, b"v2").unwrap();
    cache.write(ALICE, doc, b"v3").unwrap();
    assert_eq!(provider.content(), "v0");
    assert_eq!(*writes_seen.lock(), 3);
    assert_eq!(cache.stats().events_forwarded, 3);
    let _ = cache.flush().unwrap();
    assert_eq!(provider.content(), "v3");
}

#[test]
fn write_back_stays_quiet_without_demanding_properties() {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("d", "v0", 100);
    let doc = space.create_document(ALICE, provider);
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            write_mode: WriteMode::Back,
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    let ops_before = space.ops_count();
    cache.write(ALICE, doc, b"v1").unwrap();
    cache.write(ALICE, doc, b"v2").unwrap();
    assert_eq!(cache.stats().events_forwarded, 0);
    // Only the write_cacheability probes ran; no event dispatches.
    assert!(space.ops_count() - ops_before <= 4);
}

#[test]
fn profiles_survive_a_round_trip_through_text() {
    // End-to-end: render a profile, parse it back, apply it, observe the
    // composed behaviour.
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    register_standard(space.registry());
    let provider = MemoryProvider::new("d", "teh report. second sentence. third.", 100);
    let doc = space.create_document(ALICE, provider);

    let specs = parse_profile("spell-corrector\nsummarize sentences=1\n").unwrap();
    let text = format_profile(&specs);
    let reparsed = parse_profile(&text).unwrap();
    assert_eq!(reparsed, specs);
    apply_profile(&space, Scope::Personal(ALICE), doc, &reparsed).unwrap();
    let (bytes, _) = space.read_document(ALICE, doc).unwrap();
    assert_eq!(bytes, "the report.");
}
