//! Single-flight coalescing and the `read_with` options surface, tested
//! end to end: racing OS threads against one cold document and asserting
//! the origin saw exactly one fetch.

use bytes::Bytes;
use placeless_cache::{CacheConfig, DocumentCache, HitClass, ReadOptions, ResilienceConfig};
use placeless_core::bitprovider::BitProvider;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::id::UserId;
use placeless_core::space::{DocumentSpace, Scope};
use placeless_core::streams::{InputStream, MemoryInput, OutputStream};
use placeless_core::verifier::Verifier;
use placeless_repository::{FsProvider, MemFs};
use placeless_simenv::{FaultPlan, Instant, LatencyModel, Link, VirtualClock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, OnceLock};

const USER: UserId = UserId(1);

/// A counting provider that parks its *first* fetch until the cache
/// reports `expected_waiters` queued readers (so the race is real, not
/// timing luck), optionally failing that first fetch after the waiters
/// have queued.
struct GateProvider {
    body: Bytes,
    fetches: AtomicU64,
    fail_first: bool,
    cache: Arc<OnceLock<Arc<DocumentCache>>>,
    expected_waiters: u64,
}

impl GateProvider {
    fn new(
        fail_first: bool,
        cache: Arc<OnceLock<Arc<DocumentCache>>>,
        expected_waiters: u64,
    ) -> Arc<Self> {
        Arc::new(Self {
            body: Bytes::from_static(b"the one true body"),
            fetches: AtomicU64::new(0),
            fail_first,
            cache,
            expected_waiters,
        })
    }

    fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::SeqCst)
    }
}

impl BitProvider for GateProvider {
    fn describe(&self) -> String {
        "gate:test".to_owned()
    }

    fn open_input(&self, _clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        if self.fetches.fetch_add(1, Ordering::SeqCst) == 0 {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while std::time::Instant::now() < deadline {
                let waiting = self
                    .cache
                    .get()
                    .map(|cache| cache.waiting_reads())
                    .unwrap_or(0);
                if waiting >= self.expected_waiters {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            if self.fail_first {
                return Err(PlacelessError::Unavailable {
                    source: "gate:test".to_owned(),
                    retry_after: None,
                });
            }
        }
        Ok(Box::new(MemoryInput::new(self.body.clone())))
    }

    fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::Repository("gate is read-only".to_owned()))
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        None
    }

    fn fetch_cost_micros(&self) -> u64 {
        100
    }
}

fn gated_world(
    fail_first: bool,
    threads: usize,
) -> (
    Arc<DocumentCache>,
    Arc<GateProvider>,
    placeless_core::id::DocumentId,
) {
    let handle: Arc<OnceLock<Arc<DocumentCache>>> = Arc::new(OnceLock::new());
    let provider = GateProvider::new(fail_first, handle.clone(), threads as u64 - 1);
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let doc = space.create_document(USER, provider.clone());
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .build(),
    );
    handle.set(cache.clone()).ok().expect("handle set once");
    (cache, provider, doc)
}

/// N racing threads miss the same cold document: the provider computes
/// once, every other read coalesces, and all threads see identical bytes.
#[test]
fn concurrent_misses_compute_once() {
    const THREADS: usize = 8;
    let (cache, provider, doc) = gated_world(false, THREADS);

    let bodies: Vec<Bytes> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = &cache;
                scope.spawn(move || cache.read(USER, doc).expect("read"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "bytes diverged");
    assert_eq!(provider.fetches(), 1, "origin must compute exactly once");

    let stats = cache.stats();
    assert_eq!(stats.coalesced_waits, THREADS as u64 - 1);
    assert_eq!(stats.misses, 1, "one leader filled the entry");
    assert_eq!(stats.hits, THREADS as u64 - 1, "waiters count as hits");
    assert_eq!(stats.hits + stats.misses, THREADS as u64, "accounting");
    assert!(stats.inflight_peak >= 1);
    assert_eq!(cache.waiting_reads(), 0, "no waiter left behind");
}

/// A failing leader shares its error with every waiter — but the failure
/// is not sticky: the flight is gone before the outcome publishes, so the
/// very next read retries the origin and succeeds.
#[test]
fn leader_failure_is_shared_but_not_sticky() {
    const THREADS: usize = 4;
    let (cache, provider, doc) = gated_world(true, THREADS);

    let errors: Vec<PlacelessError> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = &cache;
                scope.spawn(move || cache.read(USER, doc).expect_err("origin is dark"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(provider.fetches(), 1, "one failed attempt serves them all");
    assert!(
        errors
            .iter()
            .all(|e| matches!(e, PlacelessError::Unavailable { .. })),
        "waiters must share the leader's error: {errors:?}"
    );
    assert_eq!(cache.stats().coalesced_waits, THREADS as u64 - 1);

    // The flight died with its leader; a fresh read goes back to the
    // origin (whose failure was first-fetch-only) and succeeds.
    assert_eq!(
        cache.read(USER, doc).expect("retry reaches the origin"),
        "the one true body"
    );
    assert_eq!(provider.fetches(), 2);
    assert_eq!(cache.stats().misses, 1, "only the successful fill counts");
}

/// A provider that holds every fetch at a barrier until `parties` fetches
/// are simultaneously in flight — provable concurrency at the origin.
struct BarrierProvider {
    body: Bytes,
    fetches: AtomicU64,
    barrier: Barrier,
}

impl BitProvider for BarrierProvider {
    fn describe(&self) -> String {
        "barrier:test".to_owned()
    }

    fn open_input(&self, _clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        self.fetches.fetch_add(1, Ordering::SeqCst);
        self.barrier.wait();
        Ok(Box::new(MemoryInput::new(self.body.clone())))
    }

    fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::Repository("read-only".to_owned()))
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        None
    }

    fn fetch_cost_micros(&self) -> u64 {
        100
    }
}

/// With single-flight disabled the same race reaches the origin once per
/// thread — the baseline the coalescing layer removes.
#[test]
fn disabled_single_flight_fetches_independently() {
    const THREADS: usize = 4;
    let provider = Arc::new(BarrierProvider {
        body: Bytes::from_static(b"independent"),
        fetches: AtomicU64::new(0),
        barrier: Barrier::new(THREADS),
    });
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let doc = space.create_document(USER, provider.clone());
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .single_flight(false)
            .build(),
    );

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let cache = &cache;
            scope.spawn(move || cache.read(USER, doc).expect("read"));
        }
    });

    assert_eq!(
        provider.fetches.load(Ordering::SeqCst),
        THREADS as u64,
        "every thread must reach the origin on its own"
    );
    assert_eq!(cache.stats().coalesced_waits, 0);
}

/// `read()` is a thin wrapper: it returns exactly `read_with(..)`'s bytes
/// under default options, on both the miss and the hit path.
#[test]
fn read_delegates_to_read_with() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock);
    fs.create("/doc", "delegation body");
    let doc = space.create_document(
        USER,
        FsProvider::new(fs, "/doc", Link::new(500, 2_000_000, 0.0, 1)),
    );
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .build(),
    );

    let miss = cache
        .read_with(USER, doc, ReadOptions::default())
        .expect("miss");
    assert_eq!(miss.class, HitClass::Miss);
    assert_eq!(cache.read(USER, doc).expect("hit"), miss.bytes);
    let hit = cache
        .read_with(USER, doc, ReadOptions::default())
        .expect("hit");
    assert_eq!(hit.class, HitClass::Hit);
    assert_eq!(hit.bytes, miss.bytes);
}

/// Per-read `allow_stale` serves resident bytes across an outage with no
/// configured serve-stale policy — and only for the reads that opt in.
#[test]
fn allow_stale_is_per_read() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/doc", "body");
    let link = Link::new(1_000, 10_000_000, 0.0, 7);
    link.set_fault_plan(FaultPlan::builder(7).outage(10_000, 500_000).build());
    let doc = space.create_document(USER, FsProvider::new(fs, "/doc", link));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .build(),
    );

    assert_eq!(cache.read(USER, doc).expect("warm fill"), "body");

    clock.advance_to(Instant(20_000));
    cache
        .read(USER, doc)
        .expect_err("no stale policy, no opt-in: the outage surfaces");

    let outcome = cache
        .read_with(USER, doc, ReadOptions::new().allow_stale(true))
        .expect("opted-in read survives the outage");
    assert_eq!(outcome.bytes, "body");
    assert_eq!(outcome.class, HitClass::StaleServed);

    let stats = cache.stats();
    assert_eq!(stats.stale_served, 1);
    assert_eq!(stats.degraded_errors, 1);
}

/// A per-read deadline override cuts retry scheduling short: the same
/// outage that the configured policy would ride out with backoff turns
/// into an immediate timeout when the caller's budget can't cover the
/// first backoff delay.
#[test]
fn deadline_override_bounds_retries() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/doc", "body");
    let link = Link::new(1_000, 10_000_000, 0.0, 9);
    link.set_fault_plan(FaultPlan::builder(9).outage(0, 30_000).build());
    let doc = space.create_document(USER, FsProvider::new(fs, "/doc", link));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .resilience(
                ResilienceConfig::builder()
                    .max_retries(3)
                    .backoff_base_micros(10_000)
                    .backoff_jitter_frac(0)
                    .build(),
            )
            .build(),
    );

    // Budget below the first backoff delay: fail fast with Timeout, no
    // retries burned.
    let err = cache
        .read_with(USER, doc, ReadOptions::new().deadline_micros(5_000))
        .expect_err("budget exhausted before the first retry");
    assert!(matches!(err, PlacelessError::Timeout { .. }), "{err}");
    assert_eq!(cache.stats().retries, 0);

    // The configured policy (no per-read override) rides the outage out:
    // backoff walks the clock past the outage end and the read succeeds.
    let outcome = cache
        .read_with(USER, doc, ReadOptions::default())
        .expect("retries outlast the outage");
    assert!(!outcome.bytes.is_empty());
    assert!(cache.stats().retries > 0);
}

/// `bypass_stage_cache` forces a full recompute: a read that would have
/// been a partial hit over the shared stage prefix classifies as a plain
/// miss and takes no stage hits.
#[test]
fn bypass_stage_cache_forces_full_recompute() {
    use placeless_bench::support::TagProperty;

    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/doc", "staged body");
    let doc = space.create_document(
        USER,
        FsProvider::new(fs, "/doc", Link::new(500, 2_000_000, 0.0, 3)),
    );
    for i in 0..3 {
        space
            .attach_active(
                Scope::Universal,
                doc,
                TagProperty::new(&format!("b{i}"), 100),
            )
            .expect("attach");
    }
    let second = UserId(2);
    let third = UserId(3);
    space.add_reference(second, doc).expect("reference");
    space.add_reference(third, doc).expect("reference");
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .stage_cache(true)
            .build(),
    );

    // First user warms the shared stage prefix.
    let first = cache
        .read_with(USER, doc, ReadOptions::default())
        .expect("cold fill");
    assert_eq!(first.class, HitClass::Miss);

    // Second user normally rides it: a partial hit.
    let partial = cache
        .read_with(second, doc, ReadOptions::default())
        .expect("staged read");
    assert_eq!(partial.class, HitClass::PartialHit);
    let stage_hits_after_partial = cache.stats().stage_hits;
    assert!(stage_hits_after_partial > 0);

    // Third user bypasses the stage cache: same bytes, full recompute.
    let bypassed = cache
        .read_with(third, doc, ReadOptions::new().bypass_stage_cache(true))
        .expect("bypassed read");
    assert_eq!(bypassed.class, HitClass::Miss);
    assert_eq!(bypassed.bytes, partial.bytes);
    assert_eq!(
        cache.stats().stage_hits,
        stage_hits_after_partial,
        "a bypassed read must not consult stage entries"
    );
}
