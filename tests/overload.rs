//! Overload-control integration tests: deadline-aware admission on the
//! per-origin window, deterministic shed decisions, and the `overload:
//! None` parity contract — all end to end through [`DocumentCache`].

use bytes::Bytes;
use placeless_cache::{
    CacheConfig, CacheStats, DocumentCache, OverloadConfig, Priority, ReadOptions,
};
use placeless_core::bitprovider::BitProvider;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::id::UserId;
use placeless_core::space::DocumentSpace;
use placeless_core::streams::{InputStream, MemoryInput, OutputStream};
use placeless_core::verifier::Verifier;
use placeless_simenv::{LatencyModel, SimRng, VirtualClock};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const USER: UserId = UserId(1);

/// All providers in this file share one origin key, so every document
/// competes for the same per-origin inflight window.
const ORIGIN: &str = "hold:origin";

/// Spin-waits (wall clock) until `ready` holds; panics after 5 seconds so
/// a broken test fails instead of hanging the suite.
fn wait_until(what: &str, ready: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !ready() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

/// A provider whose fetch parks (wall clock) holding its window slot
/// until the test releases it, then charges `advance_micros` to the
/// virtual clock. Lets a test keep the origin window provably full.
struct HoldProvider {
    body: Bytes,
    advance_micros: u64,
    held: AtomicBool,
    release: AtomicBool,
}

impl HoldProvider {
    fn new(advance_micros: u64) -> Arc<Self> {
        Arc::new(Self {
            body: Bytes::from_static(b"held body"),
            advance_micros,
            held: AtomicBool::new(false),
            release: AtomicBool::new(false),
        })
    }

    fn held(&self) -> bool {
        self.held.load(Ordering::SeqCst)
    }

    fn release(&self) {
        self.release.store(true, Ordering::SeqCst);
    }
}

impl BitProvider for HoldProvider {
    fn describe(&self) -> String {
        ORIGIN.to_owned()
    }

    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        self.held.store(true, Ordering::SeqCst);
        wait_until("holder release", || self.release.load(Ordering::SeqCst));
        clock.advance(self.advance_micros);
        Ok(Box::new(MemoryInput::new(self.body.clone())))
    }

    fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::Repository("read-only".to_owned()))
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        None
    }

    fn fetch_cost_micros(&self) -> u64 {
        self.advance_micros
    }
}

/// A counting provider with a fixed virtual fetch cost on the shared
/// origin key.
struct CheapProvider {
    body: Bytes,
    cost_micros: u64,
    fetches: AtomicU64,
}

impl CheapProvider {
    fn new(cost_micros: u64) -> Arc<Self> {
        Arc::new(Self {
            body: Bytes::from_static(b"cheap body"),
            cost_micros,
            fetches: AtomicU64::new(0),
        })
    }

    fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::SeqCst)
    }
}

impl BitProvider for CheapProvider {
    fn describe(&self) -> String {
        ORIGIN.to_owned()
    }

    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        self.fetches.fetch_add(1, Ordering::SeqCst);
        clock.advance(self.cost_micros);
        Ok(Box::new(MemoryInput::new(self.body.clone())))
    }

    fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::Repository("read-only".to_owned()))
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        None
    }

    fn fetch_cost_micros(&self) -> u64 {
        self.cost_micros
    }
}

/// A reader parked on a full origin window whose deadline lapses before
/// a slot frees is shed with the non-transient `Overloaded` — never
/// served late — and the wait it did make is charged to the queue-wait
/// counter and its priority's shed counter.
#[test]
fn deadline_expired_while_queued_sheds_instead_of_serving_late() {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let clock = space.clock().clone();
    let holder = HoldProvider::new(3_000);
    let doc_hold = space.create_document(USER, holder.clone());
    let victim_origin = CheapProvider::new(500);
    let doc_victim = space.create_document(USER, victim_origin.clone());
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .max_inflight_per_origin(1)
            .overload(
                OverloadConfig::default()
                    .expected_service_micros(1_000)
                    .inflight_bounds(1, 1)
                    .retry_after_micros(9_999),
            )
            .build(),
    );

    std::thread::scope(|scope| {
        let hold_read = {
            let cache = &cache;
            scope.spawn(move || cache.read(USER, doc_hold))
        };
        // The holder owns the origin's only slot before the victim
        // arrives, so the victim's admission check sees a full window.
        wait_until("holder to claim the slot", || holder.held());

        let victim = {
            let cache = &cache;
            scope.spawn(move || {
                cache.read_with(
                    USER,
                    doc_victim,
                    ReadOptions::default().deadline_micros(10_000),
                )
            })
        };
        // Budget 10_000 covers the expected 1_000 µs service, so the
        // victim queues rather than shedding on arrival — provably so,
        // via the window's pressure gauge.
        wait_until("victim to park on the window", || {
            cache.queued_fetches() == 1
        });

        // The deadline lapses while the victim is still parked. The
        // parked reader notices on its next poll and sheds.
        clock.advance(20_000);
        let error = victim.join().unwrap().expect_err("doomed read must shed");
        match error {
            PlacelessError::Overloaded { retry_after } => assert_eq!(retry_after, 9_999),
            other => panic!("expected Overloaded, got {other:?}"),
        }

        holder.release();
        let body = hold_read.join().unwrap().expect("holder read succeeds");
        assert_eq!(body, "held body");
    });

    assert_eq!(
        victim_origin.fetches(),
        0,
        "a shed read must never reach the origin"
    );
    let stats = cache.stats();
    assert_eq!(stats.sheds_foreground, 1, "default priority is foreground");
    assert_eq!(stats.sheds_total(), 1);
    assert_eq!(
        stats.queue_wait_micros, 20_000,
        "the doomed wait is charged to the queue-wait counter"
    );
    assert_eq!(stats.misses, 1, "only the holder's fill counts as a miss");
    assert_eq!(cache.queued_fetches(), 0, "no reader left parked");
}

fn priority_for(rng: &mut SimRng) -> Priority {
    match rng.next_below(3) {
        0 => Priority::Prefetch,
        1 => Priority::Refresh,
        _ => Priority::Foreground,
    }
}

/// One seeded overload scenario: phase A offers doomed short-deadline
/// reads against a full window (every one sheds on the admission
/// predicate), phase B offers comfortable reads against a free window
/// (every one admits). Returns the per-read outcome trace and the final
/// stats snapshot; both must be pure functions of the seed.
fn shed_decision_trace(seed: u64) -> (Vec<String>, CacheStats) {
    let mut rng = SimRng::seeded(seed);
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let clock = space.clock().clone();
    let holder = HoldProvider::new(3_000);
    let doc_hold = space.create_document(USER, holder.clone());
    let doomed: Vec<_> = (0..8)
        .map(|_| space.create_document(USER, CheapProvider::new(500)))
        .collect();
    let comfortable: Vec<_> = (0..8)
        .map(|_| space.create_document(USER, CheapProvider::new(500)))
        .collect();
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .max_inflight_per_origin(1)
            .overload(
                OverloadConfig::default()
                    .expected_service_micros(2_000)
                    .inflight_bounds(1, 4)
                    .retry_after_micros(7_777),
            )
            .build(),
    );

    let mut trace = Vec::new();
    std::thread::scope(|scope| {
        let hold_read = {
            let cache = &cache;
            scope.spawn(move || cache.read(USER, doc_hold))
        };
        wait_until("holder to claim the slot", || holder.held());

        // Phase A: the window is full and the cold-start expected
        // service time is 2_000 µs, so any deadline below that is shed
        // at the admission predicate — a decision driven only by the
        // seeded (deadline, priority) stream and the virtual clock.
        for &doc in &doomed {
            let deadline = rng.next_range(1, 2_000);
            let priority = priority_for(&mut rng);
            let opts = ReadOptions::default()
                .deadline_micros(deadline)
                .priority(priority);
            match cache.read_with(USER, doc, opts) {
                Err(PlacelessError::Overloaded { retry_after }) => trace.push(format!(
                    "shed deadline={deadline} class={} retry_after={retry_after}",
                    priority.label()
                )),
                other => panic!("doomed read must shed, got {other:?}"),
            }
        }

        holder.release();
        let body = hold_read.join().unwrap().expect("holder read succeeds");
        trace.push(format!("holder bytes={}", body.len()));
    });

    // Phase B: the window is free again; comfortable deadlines admit.
    for &doc in &comfortable {
        clock.advance(rng.next_below(1_000));
        let deadline = rng.next_range(10_000, 20_000);
        let priority = priority_for(&mut rng);
        let opts = ReadOptions::default()
            .deadline_micros(deadline)
            .priority(priority);
        let outcome = cache
            .read_with(USER, doc, opts)
            .expect("comfortable read admits");
        trace.push(format!(
            "ok deadline={deadline} class={:?} latency={}",
            outcome.class, outcome.latency_micros
        ));
    }

    (trace, cache.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shed decisions are deterministic: the same seed replays the same
    /// per-read outcomes and the same final counters, because admission
    /// is a pure function of the virtual clock, the queue state, and
    /// the seeded (deadline, priority) stream.
    #[test]
    fn same_seed_replays_identical_shed_decisions(seed in any::<u64>()) {
        let (first_trace, first_stats) = shed_decision_trace(seed);
        let (second_trace, second_stats) = shed_decision_trace(seed);
        prop_assert_eq!(&first_trace, &second_trace);
        prop_assert_eq!(first_stats, second_stats);
        // Every doomed read shed, every comfortable read admitted.
        prop_assert_eq!(first_stats.sheds_total(), 8);
        prop_assert_eq!(first_trace.len(), 17);
    }
}

/// One fixed single-threaded workload over six shared-origin documents:
/// each is read cold (miss) and then warm (hit).
fn parity_workload(overload: Option<OverloadConfig>, with_opts: bool) -> (Vec<Bytes>, CacheStats) {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let docs: Vec<_> = (0..6)
        .map(|_| space.create_document(USER, CheapProvider::new(500)))
        .collect();
    let mut config = CacheConfig::builder()
        .local_latency(LatencyModel::FREE)
        .max_inflight_per_origin(2);
    if let Some(overload) = overload {
        config = config.overload(overload);
    }
    let cache = DocumentCache::new(space, config.build());

    let priorities = [Priority::Foreground, Priority::Refresh, Priority::Prefetch];
    let mut bodies = Vec::new();
    for round in 0..2 {
        for (i, &doc) in docs.iter().enumerate() {
            let opts = if with_opts {
                ReadOptions::default()
                    .deadline_micros(50_000)
                    .priority(priorities[(round + i) % priorities.len()])
            } else {
                ReadOptions::default()
            };
            bodies.push(cache.read_with(USER, doc, opts).expect("read").bytes);
        }
    }
    (bodies, cache.stats())
}

/// The parity contract, both halves. With `overload: None` the new
/// `ReadOptions` fields are inert — priorities and deadlines change
/// nothing observable. And an *uncontended* workload under overload
/// control is byte-for-byte identical to the unprotected cache: the
/// subsystem only becomes visible under pressure.
#[test]
fn overload_none_parity_and_uncontended_transparency() {
    let (baseline_bodies, baseline) = parity_workload(None, false);
    let (opted_bodies, opted) = parity_workload(None, true);
    let (protected_bodies, protected) = parity_workload(Some(OverloadConfig::default()), true);

    assert_eq!(baseline_bodies, opted_bodies);
    assert_eq!(
        baseline, opted,
        "priorities and deadlines must be inert without the subsystem"
    );
    assert_eq!(baseline_bodies, protected_bodies);
    assert_eq!(
        baseline, protected,
        "an uncontended read stream must not observe overload control"
    );
    assert_eq!(baseline.sheds_total(), 0);
    assert_eq!(baseline.brownout_shifts, 0);
    assert_eq!(baseline.queue_wait_micros, 0);
    assert_eq!(baseline.hits, 6);
    assert_eq!(baseline.misses, 6);
}
