//! Parity test: the sharded cache in single-shard mode must reproduce the
//! seed (global-lock) cache's single-threaded statistics exactly.
//!
//! The expected values below were captured by running this exact workload
//! against the pre-sharding implementation; any drift means the refactor
//! changed observable behaviour, not just concurrency.

use placeless::prelude::*;
use placeless_cache::{CacheStats, PrefetchConfig};
use placeless_simenv::trace::WorkloadBuilder;
use placeless_simenv::LatencyModel;
use std::sync::Arc;

struct World {
    space: Arc<DocumentSpace>,
    docs: Vec<DocumentId>,
    users: Vec<UserId>,
    cache: Arc<DocumentCache>,
}

fn build() -> World {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::new(100, 10));
    register_standard(space.registry());

    let fs = MemFs::new(clock.clone());
    let users: Vec<UserId> = (1..=3).map(UserId).collect();
    let mut docs = Vec::new();
    for i in 0..40 {
        let path = format!("/doc-{i}");
        fs.create(&path, format!("document {i}: {}", "word ".repeat(i % 13)));
        let provider = FsProvider::new(fs.clone(), &path, Link::new(500, 2_000_000, 0.0, i as u64));
        let doc = space.create_document(users[0], provider);
        space
            .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
            .unwrap();
        docs.push(doc);
    }
    for &user in &users {
        for &doc in &docs {
            space.add_reference(user, doc).unwrap();
        }
    }
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            capacity_bytes: 512,
            prefetch: PrefetchConfig::up_to(2),
            local_latency: LatencyModel::FREE,
            // Single-shard mode must reproduce the original global-lock
            // cache's statistics bit for bit; this test pins them.
            shards: 1,
            ..CacheConfig::default()
        },
    );
    World {
        space,
        docs,
        users,
        cache,
    }
}

fn run_workload() -> (u64, CacheStats, u64) {
    let world = build();
    let events = WorkloadBuilder::new(42)
        .users(world.users.len())
        .documents(world.docs.len())
        .zipf_theta(0.8)
        .write_fraction(0.1)
        .events(1_200)
        .mean_think_micros(0)
        .build();
    for (i, event) in events.iter().enumerate() {
        let user = world.users[event.user];
        let doc = world.docs[event.doc];
        if event.is_write {
            world
                .cache
                .write(user, doc, format!("rev {i} by {user}").as_bytes())
                .unwrap();
        } else {
            world.cache.read(user, doc).unwrap();
        }
    }
    let (physical, _) = world.cache.resident_bytes();
    (
        world.space.clock().now().as_micros(),
        world.cache.stats(),
        physical,
    )
}

#[test]
fn single_shard_reproduces_seed_stats() {
    let (clock_end, stats, physical) = run_workload();
    assert_eq!(clock_end, 754_425);
    assert_eq!(stats.hits, 493);
    assert_eq!(stats.misses, 579);
    assert_eq!(stats.evictions, 341);
    assert_eq!(stats.writes, 128);
    assert_eq!(stats.notifier_invalidations, 197);
    assert_eq!(stats.verifier_invalidations, 0);
    assert_eq!(stats.shared_fills, 254);
    assert_eq!(stats.uncacheable_reads, 0);
    assert_eq!(physical, 470);
}

#[test]
fn workload_runs_are_identical() {
    assert_eq!(run_workload(), run_workload());
}
