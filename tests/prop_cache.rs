//! Property-based tests over the caching layer: the shared store against a
//! reference model, replacement-policy contracts under random operation
//! sequences, GDS invariants, and the simulation substrate.

use bytes::Bytes;
use placeless_cache::keys::SharedStore;
use placeless_cache::policy::{
    by_name, EntryAttrs, EntryKey, GreedyDualSize, ReplacementPolicy, ALL_POLICIES,
};
use placeless_core::id::{DocumentId, UserId};
use placeless_simenv::trace::{WorkloadBuilder, ZipfSampler};
use placeless_simenv::{SimRng, VirtualClock};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn key_strategy() -> impl Strategy<Value = EntryKey> {
    (0u64..12, 0u64..4).prop_map(|(d, u)| EntryKey::Version(DocumentId(d), UserId(u)))
}

/// Operations the store/policy models replay.
#[derive(Debug, Clone)]
enum Op {
    Insert(EntryKey, u8),
    Remove(EntryKey),
    Hit(EntryKey),
    Evict,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key_strategy().prop_map(Op::Remove),
        key_strategy().prop_map(Op::Hit),
        Just(Op::Evict),
    ]
}

proptest! {
    /// The shared store behaves like a plain `(key → bytes)` map for
    /// lookups, while storing each distinct value once.
    #[test]
    fn shared_store_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let mut store = SharedStore::new();
        let mut model: HashMap<EntryKey, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(key, v) => {
                    // Content derived from the value: equal values share.
                    store.insert(key, Bytes::from(vec![v; 16]));
                    model.insert(key, v);
                }
                Op::Remove(key) => {
                    let existed = store.remove(key);
                    prop_assert_eq!(existed, model.remove(&key).is_some());
                }
                _ => {}
            }
            // Lookups agree.
            for (&key, &v) in &model {
                prop_assert_eq!(store.get(key), Some(Bytes::from(vec![v; 16])));
            }
            prop_assert_eq!(store.key_count(), model.len());
            // Physical bytes: one copy per distinct value.
            let distinct: HashSet<u8> = model.values().copied().collect();
            prop_assert_eq!(store.distinct_contents(), distinct.len());
            prop_assert_eq!(store.physical_bytes(), distinct.len() as u64 * 16);
            prop_assert_eq!(store.logical_bytes(), model.len() as u64 * 16);
        }
    }

    /// Every policy maintains the contract: it tracks exactly the live
    /// keys, evicts only live keys, and empties exactly when drained.
    #[test]
    fn policy_contract_under_random_ops(
        name in proptest::sample::select(ALL_POLICIES.to_vec()),
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        let mut policy = by_name(name).unwrap();
        let mut live: HashSet<EntryKey> = HashSet::new();
        for op in ops {
            match op {
                Op::Insert(key, v) => {
                    policy.on_insert(key, &EntryAttrs::new(1 + v as u64, v as f64 + 1.0));
                    live.insert(key);
                }
                Op::Remove(key) => {
                    policy.on_remove(key);
                    live.remove(&key);
                }
                Op::Hit(key) => {
                    // Hits on non-resident keys may occur in the manager
                    // only for resident ones; policies must tolerate both.
                    policy.on_hit(key);
                }
                Op::Evict => {
                    match policy.evict() {
                        Some(victim) => {
                            prop_assert!(live.remove(&victim), "{}: evicted dead key", name);
                        }
                        None => prop_assert!(live.is_empty(), "{}: refused with live keys", name),
                    }
                }
            }
            prop_assert_eq!(policy.len(), live.len(), "{}", name);
        }
        // Drain: every live key comes out exactly once.
        let mut drained = HashSet::new();
        while let Some(victim) = policy.evict() {
            prop_assert!(drained.insert(victim), "{}: duplicate eviction", name);
        }
        prop_assert_eq!(drained, live, "{}", name);
    }

    /// GDS inflation (`L`) never decreases, and eviction order respects
    /// credits for a pure-insert workload.
    #[test]
    fn gds_inflation_is_monotone(costs in proptest::collection::vec(1u64..10_000, 1..64)) {
        let mut gds = GreedyDualSize::new();
        for (i, &cost) in costs.iter().enumerate() {
            gds.on_insert(
                EntryKey::Version(DocumentId(i as u64), UserId(1)),
                &EntryAttrs::new(100, cost as f64),
            );
        }
        let mut last = gds.inflation();
        while gds.evict().is_some() {
            prop_assert!(gds.inflation() >= last);
            last = gds.inflation();
        }
    }

    /// For equal sizes and no hits, GDS evicts in ascending cost order.
    #[test]
    fn gds_pure_insert_evicts_cheapest_first(costs in proptest::collection::vec(1u64..1_000_000, 1..40)) {
        let mut gds = GreedyDualSize::new();
        for (i, &cost) in costs.iter().enumerate() {
            gds.on_insert(
                EntryKey::Version(DocumentId(i as u64), UserId(1)),
                &EntryAttrs::new(64, cost as f64),
            );
        }
        let mut evicted_costs = Vec::new();
        while let Some(victim) = gds.evict() {
            let EntryKey::Version(DocumentId(i), _) = victim else {
                panic!("only version keys were inserted");
            };
            evicted_costs.push(costs[i as usize]);
        }
        let mut sorted = evicted_costs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(evicted_costs, sorted);
    }

    /// The virtual clock never goes backwards under arbitrary advances.
    #[test]
    fn clock_is_monotone(advances in proptest::collection::vec(0u64..1_000_000, 0..64)) {
        let clock = VirtualClock::new();
        let mut last = clock.now();
        for a in advances {
            if a % 2 == 0 {
                clock.advance(a);
            } else {
                clock.advance_to(placeless_simenv::Instant(a));
            }
            let now = clock.now();
            prop_assert!(now >= last);
            last = now;
        }
    }

    /// Zipf samples stay within the universe and the generator is
    /// deterministic per seed.
    #[test]
    fn zipf_within_bounds(n in 1usize..500, theta in 0.0f64..1.5, seed in any::<u64>()) {
        let zipf = ZipfSampler::new(n, theta);
        let mut a = SimRng::seeded(seed);
        let mut b = SimRng::seeded(seed);
        for _ in 0..64 {
            let x = zipf.sample(&mut a);
            prop_assert!(x < n);
            prop_assert_eq!(x, zipf.sample(&mut b));
        }
    }

    /// Workloads honor their parameters.
    #[test]
    fn workload_respects_parameters(
        seed in any::<u64>(),
        users in 1usize..8,
        docs in 1usize..64,
        events in 0usize..256,
    ) {
        let workload = WorkloadBuilder::new(seed)
            .users(users)
            .documents(docs)
            .events(events)
            .build();
        prop_assert_eq!(workload.len(), events);
        for e in &workload {
            prop_assert!(e.user < users);
            prop_assert!(e.doc < docs);
        }
    }

    /// `SimRng::next_range` is inclusive and in bounds.
    #[test]
    fn rng_range_inclusive(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let hi = lo + span;
        let mut rng = SimRng::seeded(seed);
        for _ in 0..32 {
            let v = rng.next_range(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }
}
