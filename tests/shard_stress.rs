//! Stress test for the sharded cache: eight threads hammer one cache with
//! a mixed read/write/invalidate workload over ~200 documents while the
//! byte budget is tight enough to keep the eviction path hot.
//!
//! The invariants checked are the ones a lock-striping bug would break:
//!
//! * the run completes (no deadlock between shard locks, stripe locks,
//!   and bus-driven re-entry);
//! * every read is accounted exactly once:
//!   `hits + misses + uncacheable_reads == issued reads`;
//! * physical residency never exceeds the budget, *including while the
//!   threads are still running* — the reserve-before-publish fill path
//!   must hold under contention, not just at quiescence.

use crossbeam::thread;
use placeless::prelude::*;
use placeless_simenv::LatencyModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: u64 = 8;
const CACHEABLE_DOCS: usize = 200;
const UNCACHEABLE_DOCS: usize = 8;
const OPS_PER_THREAD: u64 = 400;
const CAPACITY: u64 = 1_024;

/// Deterministic per-thread RNG (xorshift64*), so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn build_world() -> (Arc<DocumentSpace>, Arc<DocumentCache>, Vec<DocumentId>) {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let mut docs = Vec::new();
    for i in 0..CACHEABLE_DOCS + UNCACHEABLE_DOCS {
        // Distinct bodies so signature sharing cannot hide eviction
        // pressure; ~26–38 bytes each against a 1 KiB budget.
        let provider = MemoryProvider::new(
            &format!("doc{i}"),
            format!("document {i} body {}", "x".repeat(i % 13)),
            100,
        );
        let doc = space.create_document(UserId(1), provider);
        for user in 2..=THREADS {
            space.add_reference(UserId(user), doc).unwrap();
        }
        space
            .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
            .unwrap();
        if i >= CACHEABLE_DOCS {
            space
                .attach_active(Scope::Universal, doc, UncacheableMarker::new())
                .unwrap();
        }
        docs.push(doc);
    }
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig::builder()
            .capacity_bytes(CAPACITY)
            .local_latency(LatencyModel::FREE)
            .shards(8)
            .build(),
    );
    (space, cache, docs)
}

#[test]
fn stress_mixed_ops_hold_invariants() {
    let (space, cache, docs) = build_world();
    let issued_reads = AtomicU64::new(0);
    thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let space = &space;
            let docs = &docs;
            let issued_reads = &issued_reads;
            scope.spawn(move |_| {
                let user = UserId(t + 1);
                let mut rng = Rng(0x9E37_79B9 + t);
                for _ in 0..OPS_PER_THREAD {
                    let roll = rng.next() % 100;
                    if roll < 80 {
                        // Read a cacheable document (Zipf-ish: favor the
                        // low indices so shards see real hit traffic).
                        let r = rng.next();
                        let doc = docs[if r.is_multiple_of(4) {
                            (r / 4) as usize % CACHEABLE_DOCS
                        } else {
                            (r / 4) as usize % 16
                        }];
                        let bytes = cache.read(user, doc).unwrap();
                        assert!(bytes.starts_with(b"document ") || bytes.starts_with(b"rev"));
                        issued_reads.fetch_add(1, Ordering::Relaxed);
                    } else if roll < 85 {
                        // Read an uncacheable document.
                        let doc = docs[CACHEABLE_DOCS + rng.next() as usize % UNCACHEABLE_DOCS];
                        cache.read(user, doc).unwrap();
                        issued_reads.fetch_add(1, Ordering::Relaxed);
                    } else if roll < 95 {
                        // Write through the cache (invalidates everywhere).
                        let doc = docs[rng.next() as usize % CACHEABLE_DOCS];
                        cache
                            .write(user, doc, format!("rev{t} by {}", user.0).as_bytes())
                            .unwrap();
                    } else {
                        // Out-of-band invalidation through the bus.
                        let doc = docs[rng.next() as usize % CACHEABLE_DOCS];
                        space.bus().post(Invalidation::Document(doc));
                    }
                    // The budget must hold *during* the run: fills reserve
                    // room before publishing content.
                    let (physical, logical) = cache.resident_bytes();
                    assert!(
                        physical <= CAPACITY,
                        "budget overshot mid-run: {physical} > {CAPACITY}"
                    );
                    assert!(physical <= logical);
                }
            });
        }
    })
    .unwrap();

    let stats = cache.stats();
    let issued = issued_reads.load(Ordering::Relaxed);
    assert_eq!(
        stats.hits + stats.misses + stats.uncacheable_reads,
        issued,
        "every read accounted exactly once: {stats:?}"
    );
    assert!(stats.uncacheable_reads > 0, "uncacheable docs were read");
    assert!(stats.evictions > 0, "budget pressure forced evictions");
    assert!(
        stats.notifier_invalidations > 0,
        "bus traffic reached the cache"
    );
    let (physical, _) = cache.resident_bytes();
    assert!(physical <= CAPACITY, "budget holds at quiescence");
    // The entry map and the content store agree after the dust settles.
    assert!(!cache.is_empty());
}

#[test]
fn stress_write_back_flush_races_with_readers() {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let mut docs = Vec::new();
    for i in 0..32 {
        let provider = MemoryProvider::new(&format!("wb{i}"), format!("original {i}"), 100);
        let doc = space.create_document(UserId(1), provider);
        for user in 2..=4 {
            space.add_reference(UserId(user), doc).unwrap();
        }
        docs.push(doc);
    }
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig::builder()
            .capacity_bytes(4_096)
            .write_mode(WriteMode::Back)
            .local_latency(LatencyModel::FREE)
            .shards(4)
            .build(),
    );
    thread::scope(|scope| {
        for t in 0..3u64 {
            let cache = &cache;
            let docs = &docs;
            scope.spawn(move |_| {
                let user = UserId(t + 2);
                let mut rng = Rng(7 + t);
                for round in 0..200 {
                    let doc = docs[rng.next() as usize % docs.len()];
                    if rng.next().is_multiple_of(4) {
                        cache
                            .write(user, doc, format!("w{t}r{round}").as_bytes())
                            .unwrap();
                    } else {
                        cache.read(user, doc).unwrap();
                    }
                }
            });
        }
        let cache = &cache;
        scope.spawn(move |_| {
            for _ in 0..20 {
                let _ = cache.flush().unwrap();
            }
        });
    })
    .unwrap();
    let _ = cache.flush().unwrap();
    assert_eq!(cache.dirty_count(), 0, "final flush drained everything");
    let stats = cache.stats();
    assert!(stats.writes > 0);
    assert!(stats.flushes > 0);
}
