//! Integration test for the paper's Figure 2: the full read/write path
//! through the NFS layer — application → reference properties → base
//! properties → bit-provider — with the exact ordering the paper
//! prescribes.

use placeless::prelude::*;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, OutputStream, TransformingInput, TransformingOutput};
use placeless_simenv::LatencyModel;
use std::sync::Arc;

const EYAL: UserId = UserId(1);

/// Tags content with a marker on both paths, to observe ordering.
struct Tag(&'static str);

impl ActiveProperty for Tag {
    fn name(&self) -> &str {
        "tag"
    }
    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream, EventKind::GetOutputStream])
    }
    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> placeless_core::error::Result<Box<dyn InputStream>> {
        let tag = self.0;
        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(move |b| {
                let mut v = b.to_vec();
                v.extend_from_slice(format!("<r:{tag}>").as_bytes());
                Ok(bytes::Bytes::from(v))
            }),
        )))
    }
    fn wrap_output(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn OutputStream>,
    ) -> placeless_core::error::Result<Box<dyn OutputStream>> {
        let tag = self.0;
        Ok(Box::new(TransformingOutput::new(
            inner,
            Box::new(move |b| {
                let mut v = b.to_vec();
                v.extend_from_slice(format!("<w:{tag}>").as_bytes());
                Ok(bytes::Bytes::from(v))
            }),
        )))
    }
}

fn setup() -> (Arc<DocumentSpace>, Arc<MemoryProvider>, DocumentId) {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("f", "", 0);
    let doc = space.create_document(EYAL, provider.clone());
    (space, provider, doc)
}

#[test]
fn read_path_order_is_provider_base_reference() {
    let (space, provider, doc) = setup();
    provider.set_out_of_band("raw");
    space
        .attach_active(Scope::Universal, doc, Arc::new(Tag("base1")))
        .unwrap();
    space
        .attach_active(Scope::Universal, doc, Arc::new(Tag("base2")))
        .unwrap();
    space
        .attach_active(Scope::Personal(EYAL), doc, Arc::new(Tag("ref1")))
        .unwrap();
    let (bytes, report) = space.read_document(EYAL, doc).unwrap();
    // Base properties execute first (in attachment order), then the
    // reference's.
    assert_eq!(bytes, "raw<r:base1><r:base2><r:ref1>");
    assert_eq!(report.executed.len(), 3);
}

#[test]
fn write_path_order_is_reference_base_provider() {
    let (space, provider, doc) = setup();
    space
        .attach_active(Scope::Universal, doc, Arc::new(Tag("base")))
        .unwrap();
    space
        .attach_active(Scope::Personal(EYAL), doc, Arc::new(Tag("ref")))
        .unwrap();
    space.write_document(EYAL, doc, b"saved").unwrap();
    // The reference's custom output stream executes first, then the
    // base's, then the provider stores the result.
    assert_eq!(provider.content(), "saved<w:ref><w:base>");
}

#[test]
fn nfs_save_traverses_the_same_path() {
    let (space, provider, doc) = setup();
    space
        .attach_active(Scope::Universal, doc, Arc::new(Tag("base")))
        .unwrap();
    space
        .attach_active(Scope::Personal(EYAL), doc, Arc::new(Tag("ref")))
        .unwrap();
    let nfs = NfsServer::new(DirectBackend::new(space.clone()));
    nfs.export("/f", doc);
    let handle = nfs.open(EYAL, "/f", OpenMode::Write).unwrap();
    nfs.write(handle, 0, b"from word").unwrap();
    nfs.close(handle).unwrap();
    assert_eq!(provider.content(), "from word<w:ref><w:base>");

    // And the read back through NFS shows the read-path tags on top.
    let attr = nfs.getattr(EYAL, "/f").unwrap();
    let h = nfs.open(EYAL, "/f", OpenMode::Read).unwrap();
    let read = nfs.read(h, 0, attr.size as usize + 64).unwrap();
    nfs.close(h).unwrap();
    assert_eq!(read, "from word<w:ref><w:base><r:base><r:ref>");
}

#[test]
fn chained_properties_within_a_site_hand_streams_in_attachment_order() {
    // Paper: each property "hands the custom stream to the next property
    // in the calling chain" — first-attached is closest to the provider.
    let (space, provider, doc) = setup();
    space
        .attach_active(Scope::Personal(EYAL), doc, Arc::new(Tag("p1")))
        .unwrap();
    space
        .attach_active(Scope::Personal(EYAL), doc, Arc::new(Tag("p2")))
        .unwrap();
    space.write_document(EYAL, doc, b"x").unwrap();
    // Write: app → p2 → p1 → provider.
    assert_eq!(provider.content(), "x<w:p2><w:p1>");
    let (bytes, _) = space.read_document(EYAL, doc).unwrap();
    // Read: provider → p1 → p2 → app.
    assert_eq!(bytes, "x<w:p2><w:p1><r:p1><r:p2>");
}

#[test]
fn reorder_changes_resulting_content() {
    // §3 cause 3: "the result of applying a spell checking property to a
    // document varies whether it is applied before or after a language
    // translation property".
    let (space, provider, doc) = setup();
    provider.set_out_of_band("hello world");
    let spell_first = {
        space
            .attach_active(Scope::Personal(EYAL), doc, SpellCheck::new())
            .unwrap();
        let translate_id = space
            .attach_active(Scope::Personal(EYAL), doc, Translate::to("fr"))
            .unwrap();
        let (bytes, _) = space.read_document(EYAL, doc).unwrap();
        (bytes, translate_id)
    };
    // Move the translator to the front: now translation runs before the
    // spell check (which no longer finds English words to fix).
    space
        .reorder_property(Scope::Personal(EYAL), doc, spell_first.1, 0)
        .unwrap();
    let (reordered, _) = space.read_document(EYAL, doc).unwrap();
    assert_eq!(spell_first.0, "bonjour monde");
    assert_eq!(reordered, "bonjour monde");
    // With content that the spell checker changes, order matters:
    provider.set_out_of_band("teh document");
    let (now, _) = space.read_document(EYAL, doc).unwrap();
    // Translation first: "teh" survives (unknown word), then spellcheck
    // fixes it to "the" — but "document" was already translated.
    assert_eq!(now, "the document");
}
