//! Fault matrix: scripted repository failures against the resilient fetch
//! pipeline (retries, circuit breaker, serve-stale degradation) and the
//! sequence-numbered invalidation bus.
//!
//! Every scenario runs on the virtual clock with seeded fault plans, so
//! each test is a deterministic replay — the determinism properties at the
//! bottom assert that outright by comparing whole `CacheStats` structs
//! across same-seed runs.

use bytes::Bytes;
use parking_lot::Mutex;
use placeless_bench::fault::{self, FaultParams, ResilienceMode};
use placeless_cache::{
    BreakerConfig, BreakerState, CacheConfig, CacheStats, ConflictHook, ConflictResolution,
    DocumentCache, MergePolicy, ResilienceConfig, StalenessBound, WriteConflict, WriteJournal,
    WriteMode,
};
use placeless_core::bitprovider::BitProvider;
use placeless_core::cacheability::Cacheability;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::id::{DocumentId, UserId};
use placeless_core::notifier::Invalidation;
use placeless_core::op::DocOp;
use placeless_core::space::DocumentSpace;
use placeless_core::streams::{InputStream, MemoryInput, OutputStream};
use placeless_core::verifier::{ClosureVerifier, Validity, Verifier};
use placeless_repository::{FsProvider, MemFs, WebProvider, WebServer};
use placeless_simenv::{FaultPlan, Instant, LatencyModel, Link, StableStore, VirtualClock};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const USER: UserId = UserId(1);

fn lan(seed: u64) -> Link {
    Link::new(1_000, 10_000_000, 0.0, seed)
}

/// Outage while an entry is resident: without resilience the read fails;
/// the entry survives and serves again once the origin returns.
#[test]
fn provider_outage_mid_read_surfaces_and_recovers() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/doc", "body");
    let link = lan(1);
    link.set_fault_plan(FaultPlan::builder(1).outage(10_000, 60_000).build());
    let doc = space.create_document(USER, FsProvider::new(fs, "/doc", link));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .build(),
    );

    assert_eq!(cache.read(USER, doc).expect("warm fill"), "body");

    clock.advance_to(Instant(20_000));
    let err = cache.read(USER, doc).expect_err("origin is dark");
    assert!(matches!(err, PlacelessError::Unavailable { .. }), "{err}");
    assert!(cache.contains(USER, doc), "the entry is kept, not poisoned");

    clock.advance_to(Instant(60_000));
    assert_eq!(cache.read(USER, doc).expect("origin is back"), "body");

    let stats = cache.stats();
    assert_eq!(stats.degraded_errors, 1);
    assert_eq!(stats.misses, 1, "only the warm fill went to the origin");
    assert_eq!(stats.hits, 1, "the post-outage read verified and hit");
    assert_eq!(stats.stale_served, 0, "no stale service was configured");
}

/// Serve-stale masks the same outage — but only within the bound.
#[test]
fn serve_stale_honors_the_staleness_bound() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/doc", "body");
    let link = lan(2);
    link.set_fault_plan(FaultPlan::builder(2).outage(10_000, 500_000).build());
    let doc = space.create_document(USER, FsProvider::new(fs, "/doc", link));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .resilience(
                ResilienceConfig::builder()
                    .serve_stale(StalenessBound::micros(50_000))
                    .build(),
            )
            .build(),
    );

    assert_eq!(cache.read(USER, doc).expect("warm fill"), "body");

    // Within the bound: the unverifiable entry stands in for the origin.
    clock.advance_to(Instant(20_000));
    assert_eq!(cache.read(USER, doc).expect("stale service"), "body");

    // Beyond the bound: the same entry is too old to trust.
    clock.advance_to(Instant(200_000));
    let err = cache.read(USER, doc).expect_err("bound exceeded");
    assert!(err.is_transient());

    let stats = cache.stats();
    assert_eq!(stats.stale_served, 1);
    assert_eq!(stats.degraded_errors, 1);
}

/// Timeout faults: a hung conditional-GET probe charges the whole hang to
/// the virtual clock before the read recovers, and a cold fetch inside a
/// timeout window surfaces [`PlacelessError::Timeout`] to the caller.
#[test]
fn timeout_during_revalidation_charges_and_surfaces() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let server = WebServer::new("origin");
    server.publish("/page", "page body", 60_000_000);
    server.publish("/cold", "cold body", 60_000_000);
    let link = lan(3);
    link.set_fault_plan(
        FaultPlan::builder(3)
            .timeout(10_000, 80_000)
            .timeout(100_000, 150_000)
            .build(),
    );
    let warm = space.create_document(
        USER,
        WebProvider::with_revalidation(server.clone(), "/page", link.clone()),
    );
    let cold = space.create_document(USER, WebProvider::with_revalidation(server, "/cold", link));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .build(),
    );

    assert_eq!(cache.read(USER, warm).expect("warm fill"), "page body");

    // Hit revalidation inside the window: the probe hangs until the
    // window closes (the hang is charged), then the refetch goes through.
    clock.advance_to(Instant(20_000));
    assert_eq!(
        cache.read(USER, warm).expect("refetched after hang"),
        "page body"
    );
    assert!(
        clock.now().as_micros() >= 80_000,
        "the hang was charged to the clock, now={}µs",
        clock.now().as_micros()
    );
    assert_eq!(cache.stats().misses, 2, "the hung probe forced a refetch");

    // A cold fetch inside the second window has no entry to fall back on:
    // the timeout surfaces, with the hang on the bill.
    clock.advance_to(Instant(110_000));
    let err = cache.read(USER, cold).expect_err("cold fetch hangs");
    assert!(matches!(err, PlacelessError::Timeout { .. }), "{err}");
    assert!(clock.now().as_micros() >= 150_000);

    // Past the window everything flows again.
    assert_eq!(cache.read(USER, cold).expect("recovered"), "cold body");
    assert_eq!(cache.stats().degraded_errors, 1);
}

/// The per-fetch deadline bounds retry storms: a fetch that would retry
/// past the budget aborts with `Timeout` instead of backing off forever.
/// (The failures are hint-less — `error_rate`, not an outage window — so
/// the retry loop keeps backing off instead of honouring a
/// `retry_after` it cannot reach; the deadline is what stops it.)
#[test]
fn fetch_deadline_caps_the_retry_budget() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/doc", "body");
    let link = lan(4);
    link.set_fault_plan(FaultPlan::builder(4).error_rate(1.0).build());
    let doc = space.create_document(USER, FsProvider::new(fs, "/doc", link));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .resilience(
                ResilienceConfig::builder()
                    .max_retries(10)
                    .backoff_base_micros(4_000)
                    .retry_seed(4)
                    .fetch_deadline_micros(20_000)
                    .build(),
            )
            .build(),
    );

    let err = cache.read(USER, doc).expect_err("deadline must fire");
    assert!(matches!(err, PlacelessError::Timeout { .. }), "{err}");
    let stats = cache.stats();
    assert!(
        stats.retries < 10,
        "the deadline cut the retry budget short, used {}",
        stats.retries
    );
    assert!(clock.now().as_micros() <= 40_000, "no unbounded backoff");
}

/// A provider `retry_after` hint within the schedule's horizon floors
/// every backoff wait: the loop never retries sooner than the origin
/// said it could recover.
#[test]
fn retry_after_hint_floors_the_backoff() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/doc", "body");
    let link = lan(5);
    link.set_fault_plan(
        FaultPlan::builder(5)
            .error_rate(1.0)
            .retry_hint(6_000)
            .build(),
    );
    let doc = space.create_document(USER, FsProvider::new(fs, "/doc", link));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .resilience(
                ResilienceConfig::builder()
                    .max_retries(2)
                    .backoff_base_micros(4_000)
                    .retry_seed(5)
                    .build(),
            )
            .build(),
    );

    let err = cache.read(USER, doc).expect_err("origin keeps failing");
    assert!(matches!(err, PlacelessError::Unavailable { .. }), "{err}");
    let stats = cache.stats();
    assert_eq!(stats.retries, 2, "hint within horizon keeps the loop going");
    // Waits were max(backoff, hint): 6_000 then max(8_000, 6_000).
    assert!(
        clock.now().as_micros() >= 14_000,
        "floored backoffs must be charged, now={}µs",
        clock.now().as_micros()
    );
}

/// A `retry_after` hint beyond the schedule's horizon fails the fetch at
/// once: the origin told us it will not recover within any wait the loop
/// is prepared to make, so burning attempts (or stalling for the whole
/// advertised outage) is pointless.
#[test]
fn unreachable_retry_hint_fails_fast() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/doc", "body");
    let link = lan(6);
    link.set_fault_plan(FaultPlan::builder(6).outage(0, 10_000_000).build());
    let doc = space.create_document(USER, FsProvider::new(fs, "/doc", link));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .resilience(
                ResilienceConfig::builder()
                    .max_retries(10)
                    .backoff_base_micros(4_000)
                    .retry_seed(6)
                    .build(),
            )
            .build(),
    );

    let err = cache.read(USER, doc).expect_err("origin is dark for 10s");
    assert!(matches!(err, PlacelessError::Unavailable { .. }), "{err}");
    let stats = cache.stats();
    assert_eq!(stats.retries, 0, "no retry can reach a 10s-away recovery");
    assert!(
        clock.now().as_micros() <= 50_000,
        "the loop must not wait out the advertised outage, now={}µs",
        clock.now().as_micros()
    );
}

/// Breaker lifecycle: consecutive failures trip it open, open fast-fails
/// without contacting the origin, a half-open probe fails and re-opens,
/// and a successful probe closes it again.
#[test]
fn breaker_opens_half_opens_and_recovers() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    let link = lan(5);
    let plan = FaultPlan::builder(5).outage(0, 200_000).build();
    link.set_fault_plan(plan.clone());
    let mut docs = Vec::new();
    for i in 0..3 {
        let path = format!("/doc-{i}");
        fs.create(&path, "body");
        docs.push(space.create_document(USER, FsProvider::new(fs.clone(), &path, link.clone())));
    }
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .resilience(
                ResilienceConfig::builder()
                    .breaker(BreakerConfig {
                        failure_threshold: 2,
                        open_micros: 50_000,
                        half_open_probes: 1,
                    })
                    .build(),
            )
            .build(),
    );

    // Two cold reads fail against the dark origin and trip the breaker.
    assert!(cache.read(USER, docs[0]).is_err());
    assert_eq!(cache.breaker_state("fs"), BreakerState::Closed);
    assert!(cache.read(USER, docs[1]).is_err());
    assert_eq!(cache.breaker_state("fs"), BreakerState::Open);
    let failures_at_trip = plan.counters().failures_injected;

    // Open: the next read fast-fails without touching the origin.
    let err = cache.read(USER, docs[2]).expect_err("breaker rejects");
    match err {
        PlacelessError::Unavailable { retry_after, .. } => {
            assert!(retry_after.is_some(), "cool-down is advertised");
        }
        other => panic!("expected Unavailable, got {other}"),
    }
    assert_eq!(
        plan.counters().failures_injected,
        failures_at_trip,
        "no origin contact while open"
    );

    // Cool-down elapsed but the outage persists: the half-open probe
    // fails and re-opens the breaker.
    clock.advance_to(Instant(100_000));
    assert!(cache.read(USER, docs[2]).is_err());
    assert_eq!(cache.breaker_state("fs"), BreakerState::Open);

    // Outage over, cool-down over: the probe succeeds and closes it.
    clock.advance_to(Instant(250_000));
    assert_eq!(cache.read(USER, docs[2]).expect("recovered"), "body");
    assert_eq!(cache.breaker_state("fs"), BreakerState::Closed);

    let stats = cache.stats();
    assert_eq!(stats.breaker_trips, 2);
    assert_eq!(stats.degraded_errors, 4);
    assert_eq!(stats.misses, 1, "exactly one read ever got real bytes");
}

/// A dropped invalidation opens a consistency hole in a notifier-only
/// cache; the sequence gap demotes the entries to verifier revalidation,
/// which catches the stale bytes on the next read.
#[test]
fn dropped_invalidation_is_caught_by_demoted_verifiers() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
    let provider = placeless_core::bitprovider::MemoryProvider::new("doc", "v1", 1_000);
    let doc = space.create_document(USER, provider.clone());
    let other = space.create_document(
        USER,
        placeless_core::bitprovider::MemoryProvider::new("other", "x", 1_000),
    );
    // Notifier-only configuration: verifiers are not run on hits.
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .run_verifiers(false)
            .build(),
    );
    assert_eq!(cache.read(USER, doc).expect("warm"), "v1");
    cache.read(USER, other).expect("warm");

    // Baseline delivery so the sink has a sequence number to compare to.
    space
        .bus()
        .post(Invalidation::UserDocument(other, UserId(99)));

    // The source changes and the invalidation for it is lost in flight.
    provider.set_out_of_band("v2");
    space.bus().drop_next_deliveries(1);
    space.bus().post(Invalidation::Document(doc));

    // The hole is real: a notifier-only cache serves the stale bytes.
    assert_eq!(cache.read(USER, doc).expect("hazard"), "v1");
    assert_eq!(cache.stats().notifier_gaps, 0, "gap not yet visible");

    // The next delivered notification reveals the gap; every resident
    // entry is demoted to verifier revalidation.
    space
        .bus()
        .post(Invalidation::UserDocument(other, UserId(99)));
    assert_eq!(cache.stats().notifier_gaps, 1);

    // The demoted entry's verifier now runs despite run_verifiers(false)
    // and rejects the stale bytes — the cache never serves them again.
    assert_eq!(cache.read(USER, doc).expect("refetched"), "v2");
    let stats = cache.stats();
    assert_eq!(stats.verifier_invalidations, 1);
    assert_eq!(stats.misses, 3, "two warm fills + the demoted refetch");
}

/// An origin whose fetches fail while an out-of-band verifier still works.
/// Serve-stale must never override a definite verifier rejection.
struct RejectedOrigin {
    state: Arc<Mutex<(u64, Bytes)>>,
    down: AtomicBool,
}

impl RejectedOrigin {
    fn new(content: &str) -> Arc<Self> {
        Arc::new(Self {
            state: Arc::new(Mutex::new((0, Bytes::copy_from_slice(content.as_bytes())))),
            down: AtomicBool::new(false),
        })
    }

    fn update(&self, content: &str) {
        let mut state = self.state.lock();
        state.0 += 1;
        state.1 = Bytes::copy_from_slice(content.as_bytes());
    }
}

impl BitProvider for RejectedOrigin {
    fn describe(&self) -> String {
        "rejected-origin".into()
    }

    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        clock.advance(10);
        if self.down.load(Ordering::SeqCst) {
            return Err(PlacelessError::Unavailable {
                source: self.describe(),
                retry_after: None,
            });
        }
        Ok(Box::new(MemoryInput::new(self.state.lock().1.clone())))
    }

    fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::ReadOnly(DocumentId(0)))
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        // The verifier checks a side channel that keeps working during
        // the outage: it can still *refute* freshness while fetches fail.
        let seen = self.state.lock().0;
        let cell = Arc::clone(&self.state);
        Some(ClosureVerifier::new("side-channel", 2, move |_| {
            if cell.lock().0 == seen {
                Validity::Valid
            } else {
                Validity::Invalid
            }
        }))
    }

    fn fetch_cost_micros(&self) -> u64 {
        10
    }

    fn writable(&self) -> bool {
        false
    }

    fn cacheability_vote(&self) -> Cacheability {
        Cacheability::Unrestricted
    }
}

/// Verifier-rejected bytes are never served stale, whatever the bound.
#[test]
fn stale_service_never_overrides_a_verifier_rejection() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
    let origin = RejectedOrigin::new("v1");
    let doc = space.create_document(USER, origin.clone());
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .resilience(
                ResilienceConfig::builder()
                    .serve_stale(StalenessBound::micros(u64::MAX))
                    .build(),
            )
            .build(),
    );

    assert_eq!(cache.read(USER, doc).expect("warm"), "v1");

    // The content changes and the origin goes down for fetches; the
    // side-channel verifier still works and rejects the cached bytes.
    origin.update("v2");
    origin.down.store(true, Ordering::SeqCst);
    let err = cache.read(USER, doc).expect_err("rejected, not degraded");
    assert!(err.is_transient());
    let stats = cache.stats();
    assert_eq!(
        stats.stale_served, 0,
        "an unbounded staleness window still cannot serve refuted bytes"
    );
    assert_eq!(stats.verifier_invalidations, 1);
    assert_eq!(stats.degraded_errors, 1);

    // Back up: the fresh content flows.
    origin.down.store(false, Ordering::SeqCst);
    assert_eq!(cache.read(USER, doc).expect("recovered"), "v2");
}

/// The E-FAULT acceptance claim: with serve-stale + breaker, availability
/// during the scripted outage is strictly higher than without resilience,
/// and the numbers replay identically for the same seed.
#[test]
fn e_fault_availability_ranks_and_replays() {
    let params = FaultParams::default();
    let first = fault::sweep(params);
    let second = fault::sweep(params);

    let off = &first[0];
    let full = &first[2];
    assert_eq!(off.mode, ResilienceMode::Off);
    assert_eq!(full.mode, ResilienceMode::BreakerAndStale);
    assert!(
        full.availability() > off.availability(),
        "resilient {} must strictly beat unprotected {}",
        full.availability(),
        off.availability()
    );
    assert_eq!(full.failed, 0, "serve-stale masks the whole outage");
    assert!(full.stats.stale_served > 0);
    assert!(full.stats.breaker_trips > 0);

    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.stats, b.stats, "{:?} must replay exactly", a.mode);
        assert_eq!((a.served, a.failed), (b.served, b.failed));
    }
}

/// Write-through failures are recorded on the *same* per-origin breakers
/// the read path uses: a storm of failed writes opens the breaker for
/// reads too, and a successful write probe closes it for both.
#[test]
fn write_through_failures_trip_the_shared_breaker() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/doc", "v0");
    let link = lan(11);
    link.set_fault_plan(FaultPlan::builder(11).outage(0, 100_000).build());
    let doc = space.create_document(USER, FsProvider::new(fs.clone(), "/doc", link));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Through)
            .resilience(
                ResilienceConfig::builder()
                    .breaker(BreakerConfig {
                        failure_threshold: 2,
                        open_micros: 50_000,
                        half_open_probes: 1,
                    })
                    .build(),
            )
            .build(),
    );

    // Two write-through failures against the dark origin trip the breaker.
    assert!(cache.write(USER, doc, b"w1").is_err());
    assert_eq!(cache.breaker_state("fs"), BreakerState::Closed);
    assert!(cache.write(USER, doc, b"w2").is_err());
    assert_eq!(cache.breaker_state("fs"), BreakerState::Open);

    // The read path fast-fails on the breaker the writes opened.
    let err = cache.read(USER, doc).expect_err("shared breaker rejects");
    match err {
        PlacelessError::Unavailable { retry_after, .. } => {
            assert!(retry_after.is_some(), "cool-down is advertised")
        }
        other => panic!("expected Unavailable, got {other}"),
    }

    // Outage and cool-down over: a write probe succeeds and closes the
    // breaker for reads as well.
    clock.advance_to(Instant(200_000));
    cache.write(USER, doc, b"w3").expect("origin is back");
    assert_eq!(cache.breaker_state("fs"), BreakerState::Closed);
    assert_eq!(fs.read("/doc").expect("file exists"), "w3");
    assert_eq!(cache.read(USER, doc).expect("reads flow again"), "w3");
    assert_eq!(cache.stats().breaker_trips, 1);
}

/// The flush data-loss regression: a mid-flush write failure used to
/// abandon the failed entry *and* every entry not yet attempted. Now the
/// flush keeps going, re-queues what failed, and reports it.
#[test]
fn flush_into_outage_loses_nothing_and_drains_later() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    let healthy = lan(12);
    let dark = lan(13);
    dark.set_fault_plan(FaultPlan::builder(13).outage(0, 400_000).build());
    // Doc 0 flushes over a healthy link; docs 1 and 2 hit the outage.
    fs.create("/d0", "old0");
    fs.create("/d1", "old1");
    fs.create("/d2", "old2");
    let d0 = space.create_document(USER, FsProvider::new(fs.clone(), "/d0", healthy));
    let d1 = space.create_document(USER, FsProvider::new(fs.clone(), "/d1", dark.clone()));
    let d2 = space.create_document(USER, FsProvider::new(fs.clone(), "/d2", dark));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .build(),
    );
    cache.write(USER, d0, b"new0").expect("buffers");
    cache.write(USER, d1, b"new1").expect("buffers");
    cache.write(USER, d2, b"new2").expect("buffers");
    assert_eq!(cache.dirty_count(), 3);

    let report = cache.flush().expect("flush reports, not errors");
    assert!(!report.is_clean());
    assert_eq!(report.attempted, 3);
    assert_eq!(report.flushed, 1, "the healthy origin's entry flushed");
    assert_eq!(
        report.requeued.len(),
        2,
        "the dark origin's entries did not"
    );
    assert!(report
        .requeued
        .iter()
        .all(|(doc, user, err)| (*doc == d1 || *doc == d2) && *user == USER && err.is_transient()));
    assert_eq!(
        cache.dirty_count(),
        2,
        "failed entries are re-queued, not dropped"
    );
    assert_eq!(fs.read("/d0").expect("file exists"), "new0");
    assert_eq!(fs.read("/d1").expect("file exists"), "old1");

    // Origin back: the re-queued entries drain completely.
    clock.advance_to(Instant(500_000));
    let report = cache.flush().expect("flush succeeds");
    assert!(report.is_clean());
    assert_eq!(report.flushed, 2);
    assert_eq!(cache.dirty_count(), 0);
    assert_eq!(fs.read("/d1").expect("file exists"), "new1");
    assert_eq!(fs.read("/d2").expect("file exists"), "new2");
    assert_eq!(cache.stats().flushes, 3);
}

/// A flush interrupted by a timeout window: the hung write is charged to
/// the clock, surfaces as `Timeout`, and the entry stays dirty for the
/// next flush.
#[test]
fn flush_interrupted_by_timeout_requeues_the_entry() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/doc", "old");
    let link = lan(14);
    link.set_fault_plan(FaultPlan::builder(14).timeout(0, 90_000).build());
    let doc = space.create_document(USER, FsProvider::new(fs.clone(), "/doc", link));
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .build(),
    );
    cache.write(USER, doc, b"new").expect("buffers");

    let report = cache.flush().expect("flush reports, not errors");
    assert_eq!(report.flushed, 0);
    let (_, _, err) = &report.requeued[0];
    assert!(matches!(err, PlacelessError::Timeout { .. }), "{err}");
    assert!(
        clock.now().as_micros() >= 90_000,
        "the hang was charged to the clock, now={}µs",
        clock.now().as_micros()
    );
    assert_eq!(cache.dirty_count(), 1, "the write survived the timeout");
    assert_eq!(fs.read("/doc").expect("file exists"), "old");

    let report = cache.flush().expect("flush succeeds past the window");
    assert!(report.is_clean());
    assert_eq!(cache.dirty_count(), 0);
    assert_eq!(fs.read("/doc").expect("file exists"), "new");
}

/// Crash mid-append: the torn last record is truncated away, the intact
/// prefix is recovered into the dirty queue, and a flush pushes it.
#[test]
fn journal_replay_after_crash_truncates_the_torn_tail() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    let link = lan(15);
    let mut docs = Vec::new();
    for i in 0..3 {
        let path = format!("/d{i}");
        fs.create(&path, format!("old{i}"));
        docs.push(space.create_document(USER, FsProvider::new(fs.clone(), &path, link.clone())));
    }
    let medium = StableStore::new();
    {
        let cache = DocumentCache::new(
            space.clone(),
            CacheConfig::builder()
                .local_latency(LatencyModel::FREE)
                .write_mode(WriteMode::Back)
                .journal(WriteJournal::new(medium.clone()))
                .build(),
        );
        cache.write(USER, docs[0], b"new0").expect("buffers");
        cache.write(USER, docs[1], b"new1").expect("buffers");
        let intact = medium.len();
        cache.write(USER, docs[2], b"new2").expect("buffers");
        // The crash tears the append that was in flight.
        medium.tear_tail((medium.len() - intact) / 2);
    } // crash: all in-memory cache state dies

    let (journal, outcome) = WriteJournal::open(medium.clone());
    assert!(outcome.truncated, "the torn tail was detected");
    assert!(outcome.torn_bytes > 0);
    assert_eq!(outcome.records.len(), 2, "the intact prefix survived");

    let (cache, report) = DocumentCache::recover(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .journal(journal)
            .build(),
        None,
    );
    assert_eq!((report.replayed, report.requeued), (2, 2));
    assert!(report.conflicts.is_empty());
    assert_eq!(cache.dirty_count(), 2);
    assert_eq!(cache.stats().journal_replays, 2);

    let flush = cache.flush().expect("flush succeeds");
    assert!(flush.is_clean());
    assert_eq!(fs.read("/d0").expect("file exists"), "new0");
    assert_eq!(fs.read("/d1").expect("file exists"), "new1");
    assert_eq!(
        fs.read("/d2").expect("file exists"),
        "old2",
        "the torn write was still in flight at the crash — never durable"
    );
    assert!(
        medium.is_empty(),
        "every recovered record was flushed, acked, and pruned"
    );
}

/// Recovery finds the origin moved on while writes sat buffered across
/// the crash: each conflict is surfaced (never silent last-writer-wins)
/// and resolved per the hook — keep-mine re-queues, keep-theirs drops.
#[test]
fn recovery_conflicts_resolve_keep_mine_and_keep_theirs() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
    let origin_a = placeless_core::bitprovider::MemoryProvider::new("a", "base-a", 100);
    let origin_b = placeless_core::bitprovider::MemoryProvider::new("b", "base-b", 100);
    let doc_a = space.create_document(USER, origin_a.clone());
    let doc_b = space.create_document(USER, origin_b.clone());
    let medium = StableStore::new();
    let config = || {
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .run_verifiers(false)
    };
    {
        let cache = DocumentCache::new(
            space.clone(),
            config().journal(WriteJournal::new(medium.clone())).build(),
        );
        // Read first, so each journal record carries the epoch (the
        // signature of the rendition the writer based its edit on).
        cache.read(USER, doc_a).expect("warm");
        cache.read(USER, doc_b).expect("warm");
        cache.write(USER, doc_a, b"mine-a").expect("buffers");
        cache.write(USER, doc_b, b"mine-b").expect("buffers");
    } // crash before any flush

    // Both origins change out of band while the process is down.
    origin_a.set_out_of_band("theirs-a");
    origin_b.set_out_of_band("theirs-b");

    let (journal, outcome) = WriteJournal::open(medium.clone());
    assert_eq!(outcome.records.len(), 2);
    let hook: ConflictHook = Arc::new(move |conflict: &WriteConflict| {
        if conflict.doc == doc_a {
            ConflictResolution::KeepMine
        } else {
            ConflictResolution::KeepTheirs
        }
    });
    let (cache, report) =
        DocumentCache::recover(space, config().journal(journal.clone()).build(), Some(hook));
    assert_eq!(report.replayed, 2);
    assert_eq!(report.conflicts.len(), 2, "both divergences were detected");
    assert_eq!((report.kept_mine, report.kept_theirs), (1, 1));
    for conflict in &report.conflicts {
        assert_ne!(conflict.journal_epoch, conflict.origin_signature);
        assert!(
            matches!(conflict.error(), PlacelessError::Conflict { .. }),
            "conflicts surface as the non-fatal Conflict error"
        );
    }
    assert_eq!(cache.stats().write_conflicts, 2);
    assert_eq!(cache.dirty_count(), 1, "only the kept-mine write re-queued");
    assert_eq!(journal.len(), 1, "keep-theirs acked its record away");

    let flush = cache.flush().expect("flush succeeds");
    assert!(flush.is_clean());
    assert_eq!(
        origin_a.content(),
        "mine-a",
        "keep-mine overwrote the origin"
    );
    assert_eq!(origin_b.content(), "theirs-b", "keep-theirs left it alone");
    assert!(journal.is_empty());
}

/// A grouped flush whose origin batch straddles an outage: the healthy
/// document's write lands and its journal record is acknowledged even
/// though its batch-mates failed, while only the dark documents park.
/// Batching never coarsens per-entry outcomes.
#[test]
fn batched_flush_straddling_outage_parks_only_failed_entries() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    let healthy = lan(21);
    let dark = lan(22);
    dark.set_fault_plan(FaultPlan::builder(22).outage(0, 300_000).build());
    fs.create("/a", "old a");
    fs.create("/b", "old b");
    fs.create("/c", "old c");
    let a = space.create_document(USER, FsProvider::new(fs.clone(), "/a", healthy));
    let b = space.create_document(USER, FsProvider::new(fs.clone(), "/b", dark.clone()));
    let c = space.create_document(USER, FsProvider::new(fs.clone(), "/c", dark));
    let journal = WriteJournal::new(StableStore::new());
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .journal(journal.clone())
            .build(),
    );
    cache.write(USER, a, b"new a").expect("buffers");
    cache.write(USER, b, b"new b").expect("buffers");
    cache.write(USER, c, b"new c").expect("buffers");
    assert_eq!(journal.len(), 3);

    let report = cache.flush().expect("flush reports, not errors");
    // All three documents share the "fs" origin: one group, one batch.
    assert_eq!(report.batches, 1);
    assert_eq!(report.attempted, 3);
    assert_eq!(report.flushed, 1, "the healthy entry landed");
    let mut parked: Vec<DocumentId> = report.parked.iter().map(|(d, _)| *d).collect();
    parked.sort();
    let mut dark_docs = vec![b, c];
    dark_docs.sort();
    assert_eq!(parked, dark_docs, "only the dark entries parked");
    assert!(report.requeued.is_empty());
    assert_eq!(
        report.attempted,
        report.flushed + (report.parked.len() + report.requeued.len()) as u64
    );
    // The successful entry's journal record was acknowledged even though
    // the rest of its batch failed; the parked records stay durable.
    assert_eq!(journal.len(), 2, "only the parked records stay journaled");
    assert_eq!(fs.read("/a").expect("file exists"), "new a");
    assert_eq!(fs.read("/b").expect("file exists"), "old b");
    let stats = cache.stats();
    assert!(stats.flush_batches >= 1, "the grouped path ran");
    assert_eq!(stats.batched_writes, 1, "one entry succeeded via the batch");
    assert_eq!(stats.writes_parked, 2);

    // Past the outage and the breaker cool-down, the parked half of the
    // batch drains and the journal empties.
    clock.advance_to(Instant(500_000));
    let report = cache.flush().expect("second flush");
    assert!(report.is_clean());
    assert!(journal.is_empty());
    assert_eq!(fs.read("/b").expect("file exists"), "new b");
    assert_eq!(fs.read("/c").expect("file exists"), "new c");
}

/// Grouping never merges origins: a dark filesystem origin trips its own
/// breaker while a healthy web origin in the same flush keeps flushing,
/// and the open breaker rejects only its own group on the next pass.
#[test]
fn mixed_origin_batches_keep_breaker_isolation() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/f0", "old");
    fs.create("/f1", "old");
    let dark = lan(23);
    dark.set_fault_plan(FaultPlan::builder(23).outage(0, 1_000_000).build());
    let f0 = space.create_document(USER, FsProvider::new(fs.clone(), "/f0", dark.clone()));
    let f1 = space.create_document(USER, FsProvider::new(fs.clone(), "/f1", dark));
    let server = WebServer::new("origin");
    server.publish("/w0", "old", 60_000_000);
    server.publish("/w1", "old", 60_000_000);
    let web = lan(24);
    let w0 = space.create_document(
        USER,
        WebProvider::with_revalidation(server.clone(), "/w0", web.clone()),
    );
    let w1 = space.create_document(
        USER,
        WebProvider::with_revalidation(server.clone(), "/w1", web),
    );
    let journal = WriteJournal::new(StableStore::new());
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .journal(journal.clone())
            .resilience(
                ResilienceConfig::builder()
                    .breaker(BreakerConfig {
                        failure_threshold: 1,
                        open_micros: 50_000,
                        half_open_probes: 1,
                    })
                    .build(),
            )
            .build(),
    );
    for (doc, body) in [
        (f0, "new f0"),
        (f1, "new f1"),
        (w0, "new w0"),
        (w1, "new w1"),
    ] {
        cache.write(USER, doc, body.as_bytes()).expect("buffers");
    }

    let report = cache.flush().expect("flush reports, not errors");
    assert_eq!(report.batches, 2, "one group per origin");
    assert_eq!(report.flushed, 2, "the healthy web origin flushed");
    assert_eq!(report.parked.len(), 2, "the dark fs origin parked");
    assert_eq!(
        report.attempted,
        report.flushed + (report.parked.len() + report.requeued.len()) as u64
    );
    assert_eq!(cache.breaker_state("fs"), BreakerState::Open);
    assert_eq!(cache.breaker_state("http://origin"), BreakerState::Closed);
    assert_eq!(server.get("/w0").expect("served").body, "new w0");
    assert_eq!(server.get("/w1").expect("served").body, "new w1");
    assert_eq!(fs.read("/f0").expect("file exists"), "old");

    // While the fs breaker is open, a fresh web write still flushes; the
    // parked fs entries are rejected at admission without a probe.
    cache.write(USER, w0, b"newer w0").expect("buffers");
    let report = cache.flush().expect("second flush");
    assert_eq!(report.flushed, 1);
    assert_eq!(report.parked.len(), 2, "fs entries re-park without probing");
    assert_eq!(
        report.attempted,
        report.flushed + (report.parked.len() + report.requeued.len()) as u64
    );
    assert_eq!(cache.breaker_state("http://origin"), BreakerState::Closed);
    assert_eq!(server.get("/w0").expect("served").body, "newer w0");
}

/// A grouped-flush lifecycle over two origins (filesystem and web) with
/// staggered outage windows, returning everything observable so the
/// replay proptest below can compare runs byte for byte.
fn grouped_flush_run(seed: u64, writes: u64) -> (CacheStats, usize, Vec<Bytes>) {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    let fs_link = lan(seed);
    fs_link.set_fault_plan(FaultPlan::builder(seed).outage(30_000, 150_000).build());
    let server = WebServer::new("origin");
    let web_link = lan(seed.wrapping_add(1));
    web_link.set_fault_plan(
        FaultPlan::builder(seed.wrapping_add(1))
            .outage(80_000, 200_000)
            .build(),
    );
    let mut docs = Vec::new();
    for i in 0..2 {
        let path = format!("/d{i}");
        fs.create(&path, format!("seed {i}"));
        docs.push(space.create_document(USER, FsProvider::new(fs.clone(), &path, fs_link.clone())));
    }
    for i in 2..4 {
        let path = format!("/d{i}");
        server.publish(&path, format!("seed {i}"), 60_000_000);
        docs.push(space.create_document(
            USER,
            WebProvider::with_revalidation(server.clone(), &path, web_link.clone()),
        ));
    }
    let journal = WriteJournal::new(StableStore::new());
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .batched_flush(true)
            .shards(1)
            .journal(journal.clone())
            .resilience(
                ResilienceConfig::builder()
                    .max_retries(2)
                    .backoff_base_micros(500)
                    .backoff_jitter_frac(128)
                    .retry_seed(seed)
                    .breaker(BreakerConfig {
                        failure_threshold: 2,
                        open_micros: 20_000,
                        half_open_probes: 1,
                    })
                    .build(),
            )
            .build(),
    );
    for i in 0..writes {
        let slot = Instant(i * 4_000);
        if clock.now() < slot {
            clock.advance_to(slot);
        }
        let doc = docs[(i % 4) as usize];
        cache
            .write(USER, doc, format!("v{i}").as_bytes())
            .expect("write-back buffers unconditionally");
        if i % 4 == 3 {
            let report = cache.flush().expect("flush reports, not errors");
            // The batched scheduler is never lossy, whatever the
            // outage/flush interleaving.
            assert_eq!(
                report.attempted,
                report.flushed + (report.parked.len() + report.requeued.len()) as u64
            );
        }
    }
    // Past both outages and the breaker cool-downs, everything drains.
    clock.advance_to(Instant(600_000));
    let final_report = cache.flush().expect("final flush succeeds");
    assert!(final_report.is_clean(), "no origin is dark at the end");
    assert_eq!(cache.dirty_count(), 0);
    assert_eq!(cache.parked_count(), 0);
    assert!(journal.is_empty(), "all acknowledged writes reached stable");
    let mut contents: Vec<Bytes> = (0..2)
        .map(|i| fs.read(&format!("/d{i}")).expect("file exists"))
        .collect();
    for i in 2..4 {
        contents.push(server.get(&format!("/d{i}")).expect("served").body);
    }
    (cache.stats(), cache.len(), contents)
}

/// A full parked-write lifecycle on the virtual clock, returning
/// everything observable so the proptest below can compare runs.
fn parked_drain_run(seed: u64, writes: u64) -> (CacheStats, usize, Vec<Bytes>) {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    let link = lan(seed);
    link.set_fault_plan(FaultPlan::builder(seed).outage(30_000, 150_000).build());
    let mut docs = Vec::new();
    for i in 0..3 {
        let path = format!("/d{i}");
        fs.create(&path, format!("seed {i}"));
        docs.push(space.create_document(USER, FsProvider::new(fs.clone(), &path, link.clone())));
    }
    let journal = WriteJournal::new(StableStore::new());
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .shards(1)
            .journal(journal.clone())
            .resilience(
                ResilienceConfig::builder()
                    .max_retries(2)
                    .backoff_base_micros(500)
                    .backoff_jitter_frac(128)
                    .retry_seed(seed)
                    .breaker(BreakerConfig {
                        failure_threshold: 2,
                        open_micros: 20_000,
                        half_open_probes: 1,
                    })
                    .build(),
            )
            .build(),
    );
    for i in 0..writes {
        let slot = Instant(i * 4_000);
        if clock.now() < slot {
            clock.advance_to(slot);
        }
        let doc = docs[(i % 3) as usize];
        cache
            .write(USER, doc, format!("v{i}").as_bytes())
            .expect("write-back buffers unconditionally");
        if i % 3 == 2 {
            // Flushes inside the outage window park entries instead of
            // losing them; flushes outside drain whatever is parked.
            let _ = cache.flush().expect("flush reports, not errors");
        }
    }
    // Past the outage and the breaker cool-down, everything drains.
    clock.advance_to(Instant(400_000));
    let final_report = cache.flush().expect("final flush succeeds");
    assert!(final_report.is_clean(), "no origin is dark at the end");
    assert_eq!(cache.dirty_count(), 0);
    assert_eq!(cache.parked_count(), 0);
    assert!(journal.is_empty(), "all acknowledged writes reached stable");
    let contents = (0..3)
        .map(|i| fs.read(&format!("/d{i}")).expect("file exists"))
        .collect();
    (cache.stats(), cache.len(), contents)
}

/// Deterministic replay of a full cache run under a probabilistic fault
/// plan: same seed in, byte-for-byte equal stats out.
fn faulted_run(seed: u64, error_rate: f64, reads: u64) -> (Vec<Option<Bytes>>, CacheStats, u64) {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    let link = lan(seed);
    link.set_fault_plan(
        FaultPlan::builder(seed)
            .error_rate(error_rate)
            .outage(40_000, 80_000)
            .build(),
    );
    let mut docs = Vec::new();
    for i in 0..4 {
        let path = format!("/d{i}");
        fs.create(&path, format!("content {i}"));
        docs.push(space.create_document(USER, FsProvider::new(fs.clone(), &path, link.clone())));
    }
    let plan = link.fault_plan().expect("plan attached");
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .shards(1)
            .resilience(
                ResilienceConfig::builder()
                    .max_retries(2)
                    .backoff_base_micros(500)
                    .backoff_jitter_frac(128)
                    .retry_seed(seed)
                    .breaker(BreakerConfig {
                        failure_threshold: 3,
                        open_micros: 20_000,
                        half_open_probes: 1,
                    })
                    .serve_stale(StalenessBound::micros(500_000))
                    .build(),
            )
            .build(),
    );
    let mut outcomes = Vec::new();
    for i in 0..reads {
        let slot = Instant(i * 2_000);
        if clock.now() < slot {
            clock.advance_to(slot);
        }
        outcomes.push(cache.read(USER, docs[(i % 4) as usize]).ok());
    }
    (outcomes, cache.stats(), plan.counters().failures_injected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The backoff schedule is a pure function of (config, salt).
    #[test]
    fn backoff_schedule_replays_exactly(
        seed in any::<u64>(),
        salt in any::<u64>(),
        jitter in any::<u8>(),
        base in 1u64..100_000,
    ) {
        use placeless_cache::resilience::BackoffSchedule;
        let config = ResilienceConfig::builder()
            .backoff_base_micros(base)
            .backoff_jitter_frac(jitter)
            .retry_seed(seed)
            .build();
        let mut a = BackoffSchedule::new(&config, salt);
        let mut b = BackoffSchedule::new(&config, salt);
        for attempt in 0..12 {
            let da = a.delay_micros(attempt);
            prop_assert_eq!(da, b.delay_micros(attempt));
            // Jitter never exceeds the documented fraction of the base.
            let floor = base.saturating_mul(1 << attempt.min(20));
            prop_assert!(da >= floor);
            prop_assert!(da <= floor + floor * u64::from(jitter) / 256 + 1);
        }
    }

    /// Whole-cache fault replays: same seed, same outcome sequence, same
    /// stats struct, same number of injected faults.
    #[test]
    fn fault_sequence_is_deterministic(
        seed in any::<u64>(),
        error_pct in 0u32..61,
        reads in 8u64..48,
    ) {
        let rate = f64::from(error_pct) / 100.0;
        let (out_a, stats_a, injected_a) = faulted_run(seed, rate, reads);
        let (out_b, stats_b, injected_b) = faulted_run(seed, rate, reads);
        prop_assert_eq!(out_a, out_b);
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(injected_a, injected_b);
    }

    /// Parked-write drains replay exactly: same seed, same park/retry/
    /// breaker counters, same final origin contents — and no write is
    /// ever lost, whatever the outage/flush interleaving.
    #[test]
    fn parked_write_drain_replays_exactly(
        seed in any::<u64>(),
        writes in 6u64..30,
    ) {
        let (stats_a, len_a, contents_a) = parked_drain_run(seed, writes);
        let (stats_b, len_b, contents_b) = parked_drain_run(seed, writes);
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(len_a, len_b);
        prop_assert_eq!(&contents_a, &contents_b);
        // Zero loss: each origin holds exactly the last write it was sent.
        for (i, content) in contents_a.iter().enumerate() {
            let last = (0..writes).rev().find(|w| w % 3 == i as u64);
            if let Some(last) = last {
                prop_assert_eq!(content, &format!("v{last}"));
            }
        }
    }

    /// Grouped flushing replays exactly: same seed, same batch/park/
    /// breaker counters, same final contents on both origins — and no
    /// write is lost to the grouping, whatever the interleaving.
    #[test]
    fn grouped_flush_replays_exactly(
        seed in any::<u64>(),
        writes in 8u64..40,
    ) {
        let (stats_a, len_a, contents_a) = grouped_flush_run(seed, writes);
        let (stats_b, len_b, contents_b) = grouped_flush_run(seed, writes);
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(len_a, len_b);
        prop_assert_eq!(&contents_a, &contents_b);
        // Zero loss through the batched path: each document holds the
        // last write it was sent.
        for (i, content) in contents_a.iter().enumerate() {
            let last = (0..writes).rev().find(|w| w % 4 == i as u64);
            if let Some(last) = last {
                prop_assert_eq!(content, &format!("v{last}"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Operation-based multi-writer merge
// ---------------------------------------------------------------------

const BOB: UserId = UserId(2);

/// Write-back + journal + merge policy over a shared FsProvider document.
fn merge_config(journal: WriteJournal) -> CacheConfig {
    CacheConfig::builder()
        .local_latency(LatencyModel::FREE)
        .write_mode(WriteMode::Back)
        .shards(1)
        .journal(journal)
        .merge(MergePolicy::new())
        .build()
}

/// Two write-back caches append typed ops to one document; one crashes
/// with its edits only journaled. Recovery detects that the origin moved
/// under the crashed writer and rebases its ops onto the survivor's
/// landed content — neither writer's acknowledged edits are lost.
#[test]
fn two_writers_crash_then_recovery_merges_both_edit_streams() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/shared", "seed;");
    let doc = space.create_document(USER, FsProvider::new(fs.clone(), "/shared", lan(61)));
    space.add_reference(BOB, doc).expect("doc exists");

    let medium = StableStore::new();
    let alice = DocumentCache::new(
        space.clone(),
        merge_config(WriteJournal::new(medium.clone())),
    );
    let bob = DocumentCache::new(
        space.clone(),
        merge_config(WriteJournal::new(StableStore::new())),
    );
    alice.read(USER, doc).expect("warm fill");
    bob.read(BOB, doc).expect("warm fill");
    for token in ["A1;", "A2;"] {
        alice
            .write_op(USER, doc, DocOp::Append(Bytes::from(token)))
            .expect("op write buffers");
    }
    for token in ["B1;", "B2;"] {
        bob.write_op(BOB, doc, DocOp::Append(Bytes::from(token)))
            .expect("op write buffers");
    }
    assert!(bob.flush().expect("healthy origin").is_clean());
    drop(alice); // crash: Alice's buffered ops survive only in her journal

    let (journal, _) = WriteJournal::open(medium);
    let (recovered, report) = DocumentCache::recover(space, merge_config(journal), None);
    assert_eq!(report.replayed, 1, "one cumulative record per (doc, user)");
    assert_eq!(report.conflicts.len(), 1, "the origin moved under Alice");
    assert_eq!(report.merge.merged, 1);
    assert_eq!(report.merge.rebases, 2, "both appends were rebased");
    assert_eq!(report.kept_mine + report.kept_theirs, 0, "nobody lost");
    assert!(report.to_string().contains("merge:"), "{report}");
    assert!(recovered.flush().expect("healthy origin").is_clean());

    assert_eq!(
        fs.read("/shared").expect("file exists"),
        Bytes::from("seed;B1;B2;A1;A2;"),
        "canonical order: Bob landed first, Alice rebases on top"
    );
    let stats = recovered.stats();
    assert_eq!(stats.conflicts_merged, 1);
    assert_eq!(stats.merge_rebases, 2);
}

/// A scheduled partition window isolates one cache mid-flush: its
/// entries park, the other writer lands after the heal, and the parked
/// retry then merges onto the moved origin instead of clobbering it.
#[test]
fn partition_mid_flush_parks_then_merges_after_heal() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/shared", "seed;");
    let link = lan(62);
    link.set_fault_plan(FaultPlan::builder(62).partition(50_000, 150_000).build());
    let doc = space.create_document(USER, FsProvider::new(fs.clone(), "/shared", link));
    space.add_reference(BOB, doc).expect("doc exists");

    let alice = DocumentCache::new(
        space.clone(),
        merge_config(WriteJournal::new(StableStore::new())),
    );
    let bob = DocumentCache::new(
        space.clone(),
        merge_config(WriteJournal::new(StableStore::new())),
    );
    alice.read(USER, doc).expect("warm fill");
    bob.read(BOB, doc).expect("warm fill");
    alice
        .write_op(USER, doc, DocOp::Append(Bytes::from("A;")))
        .expect("op write buffers");
    bob.write_op(BOB, doc, DocOp::Append(Bytes::from("B;")))
        .expect("op write buffers");

    // Bob tries to save inside the partition: nothing lands, nothing is
    // lost — the entry parks and stays dirty.
    clock.advance_to(Instant(60_000));
    let parked = bob.flush().expect("the flush itself runs");
    assert!(!parked.is_clean(), "{parked}");
    assert_eq!(parked.flushed, 0);
    assert!(bob.dirty_count() > 0, "the write is still buffered");

    // After the heal, Alice lands first; Bob's retry faces a moved
    // origin and rebases his op onto it.
    clock.advance_to(Instant(160_000));
    assert!(alice.flush().expect("healed origin").is_clean());
    let healed = bob.flush().expect("healed origin");
    assert!(healed.is_clean(), "{healed}");
    assert!(!healed.merge.is_empty(), "the retry went through the merge");

    assert_eq!(
        fs.read("/shared").expect("file exists"),
        Bytes::from("seed;A;B;"),
        "both appends survive the partition"
    );
    assert_eq!(bob.stats().conflicts_merged, 1);
    assert!(
        bob.stats().writes_parked > 0,
        "the partition parked the write"
    );
}

/// With `merge: None` (the default) the write-back pipeline is the
/// pre-merge one: plain v1 journal frames, no flush-time conflict probe,
/// and a concurrent writer is blindly overwritten — last writer wins.
#[test]
fn merge_disabled_preserves_the_blind_overwrite_pipeline() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    fs.create("/shared", "seed");
    let doc = space.create_document(USER, FsProvider::new(fs.clone(), "/shared", lan(63)));
    space.add_reference(BOB, doc).expect("doc exists");

    let medium = StableStore::new();
    let plain_config = || {
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .shards(1)
            .journal(WriteJournal::new(medium.clone()))
            .build()
    };
    let alice = DocumentCache::new(space.clone(), plain_config());
    let bob = DocumentCache::new(
        space.clone(),
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .shards(1)
            .build(),
    );
    alice.read(USER, doc).expect("warm fill");
    alice.write(USER, doc, b"alice version").expect("buffers");
    bob.write(BOB, doc, b"bob version").expect("buffers");
    assert!(bob.flush().expect("healthy origin").is_clean());

    // The journal holds a plain v1 frame: no ops, no causal sequence.
    let records = {
        let (journal, _) = WriteJournal::open(medium.clone());
        journal.live_records()
    };
    assert_eq!(records.len(), 1);
    assert!(records[0].ops.is_empty(), "plain writes journal no ops");
    assert_eq!(records[0].writer_seq, 0);

    // Flush never probes the origin: the moved document is clobbered
    // without a conflict being counted anywhere.
    assert!(alice.flush().expect("healthy origin").is_clean());
    assert_eq!(
        fs.read("/shared").expect("file exists"),
        Bytes::from("alice version"),
        "last writer wins, exactly as before the merge subsystem"
    );
    let stats = alice.stats();
    assert_eq!(stats.write_conflicts, 0, "no probe ran");
    assert_eq!(stats.conflicts_merged, 0);
    assert_eq!(stats.merge_rebases, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying the same contribution set through `merge_onto` is
    /// order-independent (canonical causal order, not arrival order) and
    /// idempotent (duplicate deliveries collapse) — the property that
    /// makes recovery-then-flush safe to repeat after a second crash.
    #[test]
    fn merge_replay_is_order_independent_and_idempotent(
        seed in any::<u64>(),
        writers in 1u64..4,
        edits in 1u64..5,
    ) {
        use placeless_cache::merge::{merge_onto, Contribution};
        let origin = Bytes::from("origin;");
        let mut contributions = Vec::new();
        let mut seq = 0u64;
        for w in 1..=writers {
            for e in 1..=edits {
                seq += 1;
                contributions.push(Contribution {
                    user: UserId(w),
                    writer_seq: e,
                    seq,
                    ops: vec![DocOp::Append(Bytes::from(format!("w{w}e{e};")))],
                });
            }
        }
        // A deterministic shuffle driven by the proptest seed.
        let mut shuffled = contributions.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let (in_order, rebased_a) = merge_onto(&origin, contributions.clone());
        let (out_of_order, rebased_b) = merge_onto(&origin, shuffled);
        prop_assert_eq!(&in_order, &out_of_order, "arrival order must not matter");
        prop_assert_eq!(rebased_a, rebased_b);
        // Duplicate delivery of every contribution changes nothing.
        let mut doubled = contributions.clone();
        doubled.extend(contributions);
        let (deduped, rebased_c) = merge_onto(&origin, doubled);
        prop_assert_eq!(&in_order, &deduped, "replay must be idempotent");
        prop_assert_eq!(rebased_a, rebased_c);
    }
}
