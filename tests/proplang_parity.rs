//! Experiment E-PL: a runtime-authored (PropLang) property must be a full
//! citizen of the caching architecture — identical content, cacheability,
//! cost reporting, and verifier behaviour to the equivalent compiled
//! property.

use placeless::prelude::*;
use placeless_core::cacheability::Cacheability as C;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, TransformingInput};
use placeless_simenv::LatencyModel;
use std::sync::Arc;

const USER: UserId = UserId(1);

/// The compiled twin of the PropLang program under test.
struct CompiledShout;

impl ActiveProperty for CompiledShout {
    fn name(&self) -> &str {
        "compiled-shout"
    }
    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }
    fn execution_cost_micros(&self) -> u64 {
        700
    }
    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> placeless_core::error::Result<Box<dyn InputStream>> {
        report.vote(C::CacheableWithEvents);
        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(|b| {
                let text = String::from_utf8_lossy(&b).replace("teh", "the");
                Ok(bytes::Bytes::from(format!("{}!", text.to_uppercase())))
            }),
        )))
    }
}

const SCRIPT: &str =
    "@cost(700)\n@cacheable(events)\nreplace(\"teh\", \"the\") | upper | append(\"!\")";

fn space_with(content: &str) -> (Arc<DocumentSpace>, DocumentId) {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("doc", content.to_owned(), 1_000);
    let doc = space.create_document(USER, provider);
    (space, doc)
}

#[test]
fn identical_content() {
    let (space_a, doc_a) = space_with("read teh draft");
    space_a
        .attach_active(Scope::Personal(USER), doc_a, Arc::new(CompiledShout))
        .unwrap();
    let (compiled, _) = space_a.read_document(USER, doc_a).unwrap();

    let (space_b, doc_b) = space_with("read teh draft");
    let scripted = ScriptProperty::compile("shout", SCRIPT, ExtEnv::new()).unwrap();
    space_b
        .attach_active(Scope::Personal(USER), doc_b, scripted)
        .unwrap();
    let (interpreted, _) = space_b.read_document(USER, doc_b).unwrap();

    assert_eq!(compiled, interpreted);
    assert_eq!(compiled, "READ THE DRAFT!");
}

#[test]
fn identical_path_reports() {
    let (space_a, doc_a) = space_with("x");
    space_a
        .attach_active(Scope::Personal(USER), doc_a, Arc::new(CompiledShout))
        .unwrap();
    let (_, report_a) = space_a.read_document(USER, doc_a).unwrap();

    let (space_b, doc_b) = space_with("x");
    let scripted = ScriptProperty::compile("shout", SCRIPT, ExtEnv::new()).unwrap();
    space_b
        .attach_active(Scope::Personal(USER), doc_b, scripted)
        .unwrap();
    let (_, report_b) = space_b.read_document(USER, doc_b).unwrap();

    assert_eq!(report_a.cacheability, report_b.cacheability);
    assert_eq!(report_a.cost.raw_micros(), report_b.cost.raw_micros());
    assert_eq!(report_a.verifiers.len(), report_b.verifiers.len());
}

#[test]
fn identical_cache_behaviour() {
    for scripted in [false, true] {
        let (space, doc) = space_with("content");
        if scripted {
            let prop = ScriptProperty::compile("shout", SCRIPT, ExtEnv::new()).unwrap();
            space
                .attach_active(Scope::Personal(USER), doc, prop)
                .unwrap();
        } else {
            space
                .attach_active(Scope::Personal(USER), doc, Arc::new(CompiledShout))
                .unwrap();
        }
        let cache = DocumentCache::new(
            space.clone(),
            CacheConfig {
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        cache.read(USER, doc).unwrap();
        cache.read(USER, doc).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "scripted={scripted}");
        assert_eq!(stats.hits, 1, "scripted={scripted}");
        // @cacheable(events) → operation events forwarded on hits.
        assert_eq!(stats.events_forwarded, 1, "scripted={scripted}");
    }
}

#[test]
fn scripted_properties_can_be_shipped_as_plain_strings() {
    // The registry path: behaviour arrives as data.
    let (space, doc) = space_with("the payload");
    register_proplang(space.registry(), ExtEnv::new());
    let over_the_wire = r#"prepend("<<") | append(">>")"#;
    space
        .attach_by_name(
            Scope::Personal(USER),
            doc,
            "proplang",
            &Params::new()
                .with("name", "wrap")
                .with("source", over_the_wire),
        )
        .unwrap();
    let (bytes, _) = space.read_document(USER, doc).unwrap();
    assert_eq!(bytes, "<<the payload>>");
}
