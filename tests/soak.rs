//! Soak test: a scaled-down office simulation with end-state invariants.
//!
//! Drives a mixed multi-user workload (reads, NFS saves, out-of-band
//! edits, property churn, external changes, timers) and then asserts the
//! global invariants the architecture promises.

use placeless::prelude::*;
use placeless_cache::PrefetchConfig;
use placeless_simenv::trace::WorkloadBuilder;
use placeless_simenv::{LatencyModel, SimRng};
use std::sync::Arc;

struct World {
    space: Arc<DocumentSpace>,
    fs: Arc<MemFs>,
    docs: Vec<DocumentId>,
    users: Vec<UserId>,
    caches: Vec<Arc<DocumentCache>>,
}

fn build() -> World {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::new(100, 10));
    register_standard(space.registry());

    let fs = MemFs::new(clock.clone());
    let users: Vec<UserId> = (1..=4).map(UserId).collect();
    let mut docs = Vec::new();
    for i in 0..10 {
        let path = format!("/doc-{i}");
        fs.create(&path, format!("document {i} original text."));
        let provider = FsProvider::new(fs.clone(), &path, Link::new(500, 2_000_000, 0.0, i));
        let doc = space.create_document(users[0], provider);
        space
            .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
            .unwrap();
        space
            .attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())
            .unwrap();
        docs.push(doc);
    }
    for &user in &users {
        for &doc in &docs {
            space.add_reference(user, doc).unwrap();
        }
    }
    let caches = users
        .iter()
        .map(|_| {
            DocumentCache::new(
                space.clone(),
                CacheConfig {
                    capacity_bytes: 8 * 1024,
                    prefetch: PrefetchConfig::up_to(2),
                    local_latency: LatencyModel::FREE,
                    ..CacheConfig::default()
                },
            )
        })
        .collect();
    World {
        space,
        fs,
        docs,
        users,
        caches,
    }
}

#[test]
fn soak_mixed_workload_preserves_invariants() {
    let world = build();
    let events = WorkloadBuilder::new(7)
        .users(world.users.len())
        .documents(world.docs.len())
        .zipf_theta(0.8)
        .write_fraction(0.1)
        .events(1_500)
        .mean_think_micros(0)
        .build();
    let mut rng = SimRng::seeded(8);
    let mut reads = vec![0u64; world.users.len()];

    for (i, event) in events.iter().enumerate() {
        let user = world.users[event.user];
        let doc = world.docs[event.doc];
        if event.is_write {
            world
                .space
                .write_document(user, doc, format!("rev {i} by {user}").as_bytes())
                .unwrap();
        } else {
            let bytes = world.caches[event.user].read(user, doc).unwrap();
            assert!(!bytes.is_empty());
            reads[event.user] += 1;
        }
        if i % 120 == 60 {
            // Out-of-band edit under the middleware's feet.
            world
                .fs
                .write_direct(&format!("/doc-{}", event.doc), format!("oob {i}"))
                .unwrap();
        }
        if i % 200 == 100 {
            // Property churn: attach and remove a translator.
            let id = world
                .space
                .attach_active(Scope::Personal(user), doc, Translate::to("fr"))
                .unwrap();
            world
                .space
                .remove_property(Scope::Personal(user), doc, id)
                .unwrap();
        }
        if i % 300 == 299 {
            world.space.timer_tick().unwrap();
        }
    }

    // Invariant 1: accounting adds up per cache. Demand reads equal
    // hits + misses (uncacheable content never occurs here), and every
    // read returned data.
    for (i, cache) in world.caches.iter().enumerate() {
        let s = cache.stats();
        assert_eq!(
            s.hits + s.misses,
            reads[i],
            "user {i}: reads={} hits={} misses={}",
            reads[i],
            s.hits,
            s.misses
        );
    }

    // Invariant 2: capacity was respected throughout (checked at the end;
    // eviction keeps it true at every fill).
    for cache in &world.caches {
        let (physical, _) = cache.resident_bytes();
        assert!(physical <= 8 * 1024, "capacity exceeded: {physical}");
    }

    // Invariant 3: after the dust settles, every cache agrees with the
    // middleware on every (user, doc) pair — no stale entries at rest.
    for (i, &user) in world.users.iter().enumerate() {
        for &doc in &world.docs {
            let (truth, _) = world.space.read_document(user, doc).unwrap();
            let cached = world.caches[i].read(user, doc).unwrap();
            assert_eq!(truth, cached, "stale entry for {user}/{doc}");
        }
    }

    // Invariant 4: both mechanisms actually fired during the run.
    let totals = world
        .caches
        .iter()
        .map(|c| c.stats())
        .fold((0u64, 0u64), |acc, s| {
            (
                acc.0 + s.notifier_invalidations,
                acc.1 + s.verifier_invalidations,
            )
        });
    assert!(totals.0 > 0, "no notifier invalidations at all");
    assert!(totals.1 > 0, "no verifier invalidations at all");
    let _ = rng.next_u64();
}

#[test]
fn soak_is_deterministic() {
    // Two identical worlds driven by identical workloads end identical.
    let run = || {
        let world = build();
        let events = WorkloadBuilder::new(99)
            .users(world.users.len())
            .documents(world.docs.len())
            .write_fraction(0.15)
            .events(400)
            .mean_think_micros(0)
            .build();
        for (i, event) in events.iter().enumerate() {
            let user = world.users[event.user];
            let doc = world.docs[event.doc];
            if event.is_write {
                world
                    .space
                    .write_document(user, doc, format!("rev {i}").as_bytes())
                    .unwrap();
            } else {
                world.caches[event.user].read(user, doc).unwrap();
            }
        }
        let clock_end = world.space.clock().now().as_micros();
        let stats: Vec<(u64, u64, u64)> = world
            .caches
            .iter()
            .map(|c| {
                let s = c.stats();
                (s.hits, s.misses, s.evictions)
            })
            .collect();
        (clock_end, stats)
    };
    assert_eq!(run(), run());
}
