//! Failure injection: broken properties, failing repositories, and
//! mid-chain errors must surface as `Err` without poisoning the space or
//! the cache.

use placeless::prelude::*;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, EventCtx, PathCtx, PathReport};
use placeless_core::streams::{InputStream, OutputStream};
use placeless_core::verifier::Verifier;
use placeless_simenv::LatencyModel;
use std::sync::Arc;

const USER: UserId = UserId(1);

/// A property whose read-path wrapper always fails.
struct BrokenReader;

impl ActiveProperty for BrokenReader {
    fn name(&self) -> &str {
        "broken-reader"
    }
    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }
    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        _inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        Err(PlacelessError::Property {
            name: "broken-reader".into(),
            reason: "injected failure".into(),
        })
    }
}

/// A property whose write-path wrapper always fails.
struct BrokenWriter;

impl ActiveProperty for BrokenWriter {
    fn name(&self) -> &str {
        "broken-writer"
    }
    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetOutputStream])
    }
    fn wrap_output(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        _inner: Box<dyn OutputStream>,
    ) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::Property {
            name: "broken-writer".into(),
            reason: "injected failure".into(),
        })
    }
}

/// An event handler that always fails.
struct BrokenHandler;

impl ActiveProperty for BrokenHandler {
    fn name(&self) -> &str {
        "broken-handler"
    }
    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::ContentWritten])
    }
    fn on_event(&self, _ctx: &EventCtx<'_>, _event: &DocumentEvent) -> Result<()> {
        Err(PlacelessError::Property {
            name: "broken-handler".into(),
            reason: "injected failure".into(),
        })
    }
}

/// A provider that fails every open.
struct DeadProvider;

impl BitProvider for DeadProvider {
    fn describe(&self) -> String {
        "dead".into()
    }
    fn open_input(&self, _clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        Err(PlacelessError::Repository("disk on fire".into()))
    }
    fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::Repository("disk on fire".into()))
    }
    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        None
    }
    fn fetch_cost_micros(&self) -> u64 {
        0
    }
}

fn space() -> Arc<DocumentSpace> {
    DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE)
}

#[test]
fn broken_read_property_fails_the_read_not_the_space() {
    let space = space();
    let doc = space.create_document(USER, MemoryProvider::new("d", "ok", 0));
    let id = space
        .attach_active(Scope::Personal(USER), doc, Arc::new(BrokenReader))
        .unwrap();
    let err = space.read_document(USER, doc).err().unwrap();
    assert!(matches!(err, PlacelessError::Property { .. }));
    // Removing the property heals the document.
    space
        .remove_property(Scope::Personal(USER), doc, id)
        .unwrap();
    assert_eq!(space.read_document(USER, doc).unwrap().0, "ok");
}

#[test]
fn broken_write_property_preserves_old_content() {
    let space = space();
    let provider = MemoryProvider::new("d", "original", 0);
    let doc = space.create_document(USER, provider.clone());
    space
        .attach_active(Scope::Personal(USER), doc, Arc::new(BrokenWriter))
        .unwrap();
    assert!(space.write_document(USER, doc, b"lost").is_err());
    assert_eq!(provider.content(), "original", "no partial commit");
}

#[test]
fn broken_event_handler_surfaces_from_the_triggering_write() {
    let space = space();
    let provider = MemoryProvider::new("d", "v1", 0);
    let doc = space.create_document(USER, provider.clone());
    space
        .attach_active(Scope::Universal, doc, Arc::new(BrokenHandler))
        .unwrap();
    let err = space.write_document(USER, doc, b"v2").err().unwrap();
    assert!(matches!(err, PlacelessError::Property { .. }));
    // The provider commit happened before event dispatch — the content is
    // durable even though the handler failed.
    assert_eq!(provider.content(), "v2");
}

#[test]
fn dead_repository_fails_cleanly_through_the_cache() {
    let space = space();
    let doc = space.create_document(USER, Arc::new(DeadProvider));
    let good = space.create_document(USER, MemoryProvider::new("g", "alive", 0));
    let cache = DocumentCache::new(
        space,
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    for _ in 0..3 {
        let err = cache.read(USER, doc).err().unwrap();
        assert!(matches!(err, PlacelessError::Repository(_)));
    }
    // The cache is not poisoned: other documents still work.
    assert_eq!(cache.read(USER, good).unwrap(), "alive");
    assert!(!cache.contains(USER, doc));
}

#[test]
fn failing_verifier_source_degrades_to_refill() {
    // A verifier that says Invalid forever forces a refill on every read —
    // correct (if wasteful), never wedged.
    let space = space();
    let provider = MemoryProvider::new("d", "steady", 0);
    let doc = space.create_document(USER, provider.clone());
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    cache.read(USER, doc).unwrap();
    // Thrash the provider epoch so the mtime verifier always fails.
    for _ in 0..5 {
        provider.set_out_of_band("steady");
        assert_eq!(cache.read(USER, doc).unwrap(), "steady");
    }
    let stats = cache.stats();
    assert_eq!(stats.verifier_invalidations, 5);
    assert_eq!(stats.misses, 6);
}

#[test]
fn nfs_failures_release_handles() {
    let space = space();
    let doc = space.create_document(USER, Arc::new(DeadProvider));
    let nfs = NfsServer::new(DirectBackend::new(space));
    nfs.export("/dead", doc);
    assert!(nfs.open(USER, "/dead", OpenMode::Read).is_err());
    assert_eq!(nfs.open_count(), 0);
    // Write handles open lazily and fail at close.
    let h = nfs.open(USER, "/dead", OpenMode::Write).unwrap();
    nfs.write(h, 0, b"x").unwrap();
    assert!(nfs.close(h).is_err());
    assert_eq!(
        nfs.open_count(),
        0,
        "failed close still releases the handle"
    );
}

#[test]
fn proplang_runtime_errors_propagate() {
    let space = space();
    let doc = space.create_document(USER, MemoryProvider::new("d", "x", 0));
    // `append_ext` of a source the environment does not know fails at read
    // time (the program parsed fine).
    let prop = ScriptProperty::compile("bad", "append_ext(\"ghost\")", ExtEnv::new()).unwrap();
    space
        .attach_active(Scope::Personal(USER), doc, prop)
        .unwrap();
    let err = space.read_document(USER, doc).err().unwrap();
    assert!(matches!(err, PlacelessError::Script(_)));
}

#[test]
fn error_messages_identify_the_failing_property() {
    let space = space();
    let doc = space.create_document(USER, MemoryProvider::new("d", "x", 0));
    space
        .attach_active(Scope::Universal, doc, Arc::new(BrokenHandler))
        .unwrap();
    let err = space.write_document(USER, doc, b"y").err().unwrap();
    assert!(err.to_string().contains("broken-handler"), "{err}");
}
