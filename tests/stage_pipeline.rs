//! End-to-end tests of the staged read path: byte parity with the plain
//! path (opaque stages included), content-addressed invalidation via
//! external epochs, and cacheability enforcement during the staged walk.

use bytes::Bytes;
use placeless::prelude::*;
use placeless_core::cacheability::Cacheability;
use placeless_core::error::Result as CoreResult;
use placeless_core::event::{EventKind, Interests};
use placeless_core::external::SimpleExternal;
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, TransformingInput};
use placeless_proplang::{ExtEnv, ScriptProperty};
use std::sync::Arc;

/// Appends a fixed marker; staged (tokened) or opaque on demand.
struct Suffix {
    name: String,
    marker: Vec<u8>,
    tokened: bool,
}

impl Suffix {
    fn staged(label: &str) -> Arc<Self> {
        Arc::new(Self {
            name: format!("suffix-{label}"),
            marker: format!("[{label}]").into_bytes(),
            tokened: true,
        })
    }

    fn opaque(label: &str) -> Arc<Self> {
        Arc::new(Self {
            name: format!("opaque-{label}"),
            marker: format!("[{label}]").into_bytes(),
            tokened: false,
        })
    }
}

impl ActiveProperty for Suffix {
    fn name(&self) -> &str {
        &self.name
    }
    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }
    fn execution_cost_micros(&self) -> u64 {
        100
    }
    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> CoreResult<Box<dyn InputStream>> {
        let marker = self.marker.clone();
        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(move |bytes| {
                let mut out = bytes.to_vec();
                out.extend_from_slice(&marker);
                Ok(Bytes::from(out))
            }),
        )))
    }
    fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        self.tokened.then(|| self.marker.clone())
    }
}

/// A tokened property that nevertheless votes its path uncacheable.
struct NoStore;

impl ActiveProperty for NoStore {
    fn name(&self) -> &str {
        "no-store"
    }
    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }
    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> CoreResult<Box<dyn InputStream>> {
        report.vote(Cacheability::Uncacheable);
        Ok(inner)
    }
    fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        Some(b"no-store".to_vec())
    }
}

const USERS: usize = 3;

/// Builds a document with a mixed universal chain (staged, staged, opaque)
/// and one staged per-user suffix, behind a cache with stage caching
/// `stage_cache`.
fn mixed_world(stage_cache: bool) -> (Arc<DocumentCache>, DocumentId, Vec<UserId>) {
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let provider = MemoryProvider::new("doc", "the draft and the paper\nsecond line", 1_000);
    let doc = space.create_document(UserId(0), provider);
    space
        .attach_active(
            Scope::Universal,
            doc,
            ScriptProperty::compile("up", "upper", ExtEnv::new()).unwrap(),
        )
        .unwrap();
    space
        .attach_active(
            Scope::Universal,
            doc,
            ScriptProperty::compile("head", "take_lines(1)", ExtEnv::new()).unwrap(),
        )
        .unwrap();
    space
        .attach_active(Scope::Universal, doc, Suffix::opaque("!"))
        .unwrap();
    let users: Vec<UserId> = (1..=USERS as u64).map(UserId).collect();
    for &user in &users {
        space.add_reference(user, doc).unwrap();
        space
            .attach_active(
                Scope::Personal(user),
                doc,
                Suffix::staged(&format!("u{}", user.0)),
            )
            .unwrap();
    }
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder().stage_cache(stage_cache).build(),
    );
    (cache, doc, users)
}

/// Every user's first and second read, in order.
fn render_all(cache: &DocumentCache, doc: DocumentId, users: &[UserId]) -> Vec<Bytes> {
    let mut out = Vec::new();
    for &user in users {
        out.push(cache.read(user, doc).unwrap());
    }
    for &user in users {
        out.push(cache.read(user, doc).unwrap());
    }
    out
}

#[test]
fn staged_path_is_byte_identical_to_plain_path() {
    let (plain, doc, users) = mixed_world(false);
    let (staged, sdoc, susers) = mixed_world(true);
    let expected = render_all(&plain, doc, &users);
    let got = render_all(&staged, sdoc, &susers);
    assert_eq!(got, expected);

    // The opaque stage ran (its marker is in the output) and the staged
    // walk genuinely engaged: later users partial-hit the tokened prefix.
    assert!(got[0].ends_with(b"[!][u1]"));
    let stats = staged.stats();
    assert_eq!(stats.stage_partial_hits, USERS as u64 - 1);
    // Two universal tokened stages hit per later user; the opaque stage
    // re-executes every miss and never gets an entry.
    assert_eq!(stats.stage_hits, 2 * (USERS as u64 - 1));
    assert_eq!(staged.stage_entry_count(), 2 + USERS);

    // The plain world saw none of this.
    assert_eq!(plain.stats().stage_hits, 0);
    assert_eq!(plain.stats().stage_bytes, 0);
    assert_eq!(plain.stage_entry_count(), 0);
}

#[test]
fn external_epoch_change_rekeys_the_chain() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let provider = MemoryProvider::new("doc", "price: ", 1_000);
    let doc = space.create_document(UserId(0), provider);
    let env = ExtEnv::new();
    let quote = SimpleExternal::new("quote", "v1");
    env.add(quote.clone());
    space
        .attach_active(
            Scope::Universal,
            doc,
            ScriptProperty::compile("q", "append_ext(\"quote\")", env).unwrap(),
        )
        .unwrap();
    let users: Vec<UserId> = (1..=3).map(UserId).collect();
    for &user in &users {
        space.add_reference(user, doc).unwrap();
        space
            .attach_active(
                Scope::Personal(user),
                doc,
                Suffix::staged(&format!("u{}", user.0)),
            )
            .unwrap();
    }
    let cache = DocumentCache::new(space, CacheConfig::builder().stage_cache(true).build());

    // Two users populate and share the external-bearing stage.
    assert_eq!(
        cache.read(users[0], doc).unwrap(),
        Bytes::from_static(b"price: v1[u1]")
    );
    assert_eq!(
        cache.read(users[1], doc).unwrap(),
        Bytes::from_static(b"price: v1[u2]")
    );
    let before = cache.stats();
    assert_eq!(before.stage_hits, 1);

    // The external changes. A cold reader must see the new value even
    // though the v1 stage entries are still resident: the changed epoch
    // changes the token, so the old entries simply stop being addressed.
    quote.set("v2");
    assert_eq!(
        cache.read(users[2], doc).unwrap(),
        Bytes::from_static(b"price: v2[u3]")
    );
    let after = cache.stats();
    assert_eq!(after.stage_hits, before.stage_hits, "no stale stage served");
    assert_eq!(after.stage_partial_hits, before.stage_partial_hits);
}

#[test]
fn uncacheable_vote_blocks_stage_fills() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let provider = MemoryProvider::new("doc", "secret", 1_000);
    let doc = space.create_document(UserId(0), provider);
    space
        .attach_active(Scope::Universal, doc, Arc::new(NoStore))
        .unwrap();
    let user = UserId(1);
    space.add_reference(user, doc).unwrap();
    let cache = DocumentCache::new(space, CacheConfig::builder().stage_cache(true).build());

    assert_eq!(
        cache.read(user, doc).unwrap(),
        Bytes::from_static(b"secret")
    );
    assert_eq!(
        cache.read(user, doc).unwrap(),
        Bytes::from_static(b"secret")
    );
    let stats = cache.stats();
    assert_eq!(stats.uncacheable_reads, 2, "every read forwarded");
    assert_eq!(stats.stage_hits, 0);
    assert_eq!(
        cache.stage_entry_count(),
        0,
        "a token does not override the cacheability vote"
    );
    assert_eq!(stats.stage_bytes, 0);
}
