//! Property-based tests over the core data structures: digests, the
//! cacheability lattice, stream transformer composition, the RLE codec,
//! stage signatures, and the PropLang front end.

use bytes::Bytes;
use placeless_cache::digest::{md5, Md5, Signature};
use placeless_core::bitprovider::MemoryProvider;
use placeless_core::cacheability::{aggregate, Cacheability};
use placeless_core::content::Params;
use placeless_core::error::Result as CoreResult;
use placeless_core::event::{EventKind, Interests};
use placeless_core::id::{DocumentId, UserId};
use placeless_core::plan::TransformPlan;
use placeless_core::profile::{format_profile, parse_profile, PropertySpec};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport, PropsSnapshot};
use placeless_core::streams::{read_all, InputStream, MemoryInput, TransformingInput};
use placeless_properties::compress::{rle_compress, rle_decompress};
use placeless_proplang::{parse, run, ExtEnv, ScriptProperty};
use placeless_simenv::VirtualClock;
use proptest::prelude::*;
use std::sync::Arc;

fn any_cacheability() -> impl Strategy<Value = Cacheability> {
    prop_oneof![
        Just(Cacheability::Uncacheable),
        Just(Cacheability::CacheableWithEvents),
        Just(Cacheability::Unrestricted),
    ]
}

/// A pass-through property with an arbitrary name and token, for probing
/// the stage-signature scheme.
struct TokenProp {
    name: String,
    token: Vec<u8>,
}

impl ActiveProperty for TokenProp {
    fn name(&self) -> &str {
        &self.name
    }
    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }
    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> CoreResult<Box<dyn InputStream>> {
        Ok(inner)
    }
    fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        Some(self.token.clone())
    }
}

/// Compiles a fresh one-stage plan and returns the stage's signature over
/// `input` — each call builds everything from scratch, so equal results
/// demonstrate cross-run stability.
fn stage_sig(prop: Arc<dyn ActiveProperty>, input: &[u8]) -> Signature {
    let clock = VirtualClock::new();
    let plan = TransformPlan::compile(
        &clock,
        DocumentId(1),
        UserId(1),
        MemoryProvider::new("p", "body", 0),
        vec![prop],
        Vec::new(),
        PropsSnapshot::default(),
    );
    plan.stage_signature(0, md5(input)).expect("tokened stage")
}

fn token_sig(name: &str, token: &[u8], input: &[u8]) -> Signature {
    stage_sig(
        Arc::new(TokenProp {
            name: name.to_owned(),
            token: token.to_vec(),
        }),
        input,
    )
}

fn script_sig(source: &str, input: &[u8]) -> Signature {
    let prop = ScriptProperty::compile("p", source, ExtEnv::new()).expect("compile");
    stage_sig(prop, input)
}

proptest! {
    #[test]
    fn md5_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(1usize..256, 0..16),
    ) {
        let oneshot = md5(&data);
        let mut ctx = Md5::new();
        let mut rest: &[u8] = &data;
        for cut in cuts {
            if rest.is_empty() {
                break;
            }
            let take = cut.min(rest.len());
            ctx.update(&rest[..take]);
            rest = &rest[take..];
        }
        ctx.update(rest);
        prop_assert_eq!(ctx.finalize(), oneshot);
    }

    #[test]
    fn md5_is_deterministic_and_sensitive(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        flip in any::<u8>(),
    ) {
        prop_assert_eq!(md5(&data), md5(&data));
        let mut other = data.clone();
        let i = flip as usize % other.len();
        other[i] ^= 0x01;
        prop_assert_ne!(md5(&data), md5(&other));
    }

    #[test]
    fn cacheability_aggregate_is_min(votes in proptest::collection::vec(any_cacheability(), 0..16)) {
        let agg = aggregate(votes.clone());
        let min = votes.iter().copied().min().unwrap_or(Cacheability::Unrestricted);
        prop_assert_eq!(agg, min);
    }

    #[test]
    fn cacheability_combine_laws(a in any_cacheability(), b in any_cacheability(), c in any_cacheability()) {
        prop_assert_eq!(a.combine(b), b.combine(a));
        prop_assert_eq!(a.combine(b).combine(c), a.combine(b.combine(c)));
        prop_assert_eq!(a.combine(a), a);
        prop_assert_eq!(a.combine(Cacheability::Unrestricted), a);
        prop_assert_eq!(a.combine(Cacheability::Uncacheable), Cacheability::Uncacheable);
    }

    #[test]
    fn transform_chain_equals_function_composition(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        suffix_a in proptest::collection::vec(any::<u8>(), 0..16),
        suffix_b in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        // Chain: raw → (+a) → (+b), as the read path composes wrappers.
        let sa = suffix_a.clone();
        let inner = TransformingInput::new(
            Box::new(MemoryInput::new(Bytes::from(data.clone()))),
            Box::new(move |b| {
                let mut v = b.to_vec();
                v.extend_from_slice(&sa);
                Ok(Bytes::from(v))
            }),
        );
        let sb = suffix_b.clone();
        let mut outer = TransformingInput::new(
            Box::new(inner),
            Box::new(move |b| {
                let mut v = b.to_vec();
                v.extend_from_slice(&sb);
                Ok(Bytes::from(v))
            }),
        );
        let streamed = read_all(&mut outer).unwrap();
        let mut expected = data;
        expected.extend_from_slice(&suffix_a);
        expected.extend_from_slice(&suffix_b);
        prop_assert_eq!(streamed, Bytes::from(expected));
    }

    #[test]
    fn partial_reads_see_the_same_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        bufsize in 1usize..64,
    ) {
        let mut stream = MemoryInput::new(Bytes::from(data.clone()));
        let mut out = Vec::new();
        let mut buf = vec![0u8; bufsize];
        loop {
            let n = stream.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(out, data);
    }

    #[test]
    fn rle_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let compressed = rle_compress(&data);
        prop_assert_eq!(rle_decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn rle_runs_compress_well(byte in any::<u8>(), len in 1usize..4096) {
        let data = vec![byte; len];
        let compressed = rle_compress(&data);
        // Each 255-run costs 2 bytes.
        prop_assert!(compressed.len() <= (len / 255 + 1) * 2);
    }

    #[test]
    fn profile_format_parse_round_trips(
        kinds in proptest::collection::vec("[a-z][a-z0-9-]{0,12}", 1..6),
        names in proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 0..4),
        strings in proptest::collection::vec("[ -~]{0,24}", 0..4),
        ints in proptest::collection::vec(any::<i32>(), 0..4),
    ) {
        let specs: Vec<PropertySpec> = kinds
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                let mut params = Params::new();
                for (j, name) in names.iter().enumerate() {
                    match (i + j) % 3 {
                        0 => {
                            if let Some(s) = strings.get(j) {
                                params.set(name, s.as_str());
                            }
                        }
                        1 => {
                            if let Some(&v) = ints.get(j) {
                                params.set(name, v as i64);
                            }
                        }
                        _ => params.set(name, (i + j) % 2 == 0),
                    }
                }
                PropertySpec::new(kind, params)
            })
            .collect();
        let text = format_profile(&specs);
        let reparsed = parse_profile(&text).unwrap();
        prop_assert_eq!(reparsed, specs);
    }

    #[test]
    fn profile_parser_never_panics(source in "\\PC*") {
        let _ = parse_profile(&source);
    }

    #[test]
    fn proplang_lexer_never_panics(source in "\\PC*") {
        let _ = parse(&source);
    }

    #[test]
    fn proplang_replace_matches_std(
        text in "[a-z ]{0,200}",
        from in "[a-z]{1,5}",
        to in "[a-z]{0,5}",
    ) {
        let program = parse(&format!("replace(\"{from}\", \"{to}\")")).unwrap();
        let out = run(&program, text.as_bytes(), &|_| None, &ExtEnv::new()).unwrap();
        prop_assert_eq!(String::from_utf8(out).unwrap(), text.replace(&from, &to));
    }

    #[test]
    fn proplang_rot13_is_involution(text in "\\PC{0,200}") {
        let program = parse("rot13 | rot13").unwrap();
        let out = run(&program, text.as_bytes(), &|_| None, &ExtEnv::new()).unwrap();
        prop_assert_eq!(String::from_utf8(out).unwrap(), text);
    }

    #[test]
    fn proplang_upper_lower(text in "[a-zA-Z0-9 ]{0,200}") {
        let program = parse("upper | lower").unwrap();
        let out = run(&program, text.as_bytes(), &|_| None, &ExtEnv::new()).unwrap();
        prop_assert_eq!(String::from_utf8(out).unwrap(), text.to_lowercase());
    }

    /// Stage signatures are stable across independently compiled plans,
    /// and any change to the property's name, its parameters (token), or
    /// its input re-keys the stage.
    #[test]
    fn stage_signatures_stable_and_sensitive(
        name in "[a-z][a-z0-9-]{0,12}",
        token in proptest::collection::vec(any::<u8>(), 0..48),
        input in proptest::collection::vec(any::<u8>(), 0..256),
        tweak in any::<u8>(),
    ) {
        let sig = token_sig(&name, &token, &input);
        // Same (input, property, params) → same signature across runs.
        prop_assert_eq!(token_sig(&name, &token, &input), sig);
        // A parameter change re-keys.
        let mut other_token = token.clone();
        other_token.push(tweak);
        prop_assert_ne!(token_sig(&name, &other_token, &input), sig);
        // An input change re-keys.
        let mut other_input = input.clone();
        other_input.push(tweak);
        prop_assert_ne!(token_sig(&name, &token, &other_input), sig);
        // A different property re-keys.
        prop_assert_ne!(token_sig(&format!("{name}x"), &token, &input), sig);
    }

    /// Changing a PropLang property's program text changes its stage
    /// signature (the token folds in the source).
    #[test]
    fn proplang_program_text_rekeys_stages(
        n in 1i64..40,
        offset in 1i64..40,
        input in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let m = n + offset;
        let a = script_sig(&format!("take_lines({n})"), &input);
        prop_assert_eq!(script_sig(&format!("take_lines({n})"), &input), a);
        prop_assert_ne!(script_sig(&format!("take_lines({m})"), &input), a);
    }

    #[test]
    fn proplang_take_lines_bounds(text in "[a-z\\n]{0,300}", n in 0i64..20) {
        let program = parse(&format!("take_lines({n})")).unwrap();
        let out = run(&program, text.as_bytes(), &|_| None, &ExtEnv::new()).unwrap();
        let out = String::from_utf8(out).unwrap();
        prop_assert!(out.lines().count() <= n as usize);
    }
}
