//! Streaming/buffered parity: the chunked zero-copy walk
//! ([`StagePipeline`]) must be observationally identical to the buffered
//! reference walk (`run_stage_buffered` with manual chain-signature
//! threading, exactly as the cache's old miss loop ran). Property-based
//! over chain shapes (pass-through, appending, opaque, length-preserving
//! transforms) and body sizes that straddle the 4 KiB chunk boundary.

use bytes::Bytes;
use placeless_core::digest::md5;
use placeless_core::error::Result as CoreResult;
use placeless_core::event::{EventKind, Interests};
use placeless_core::id::{DocumentId, UserId};
use placeless_core::plan::{StagePipeline, TransformPlan};
use placeless_core::prelude::MemoryProvider;
use placeless_core::property::{ActiveProperty, PathCtx, PathReport, PropsSnapshot};
use placeless_core::streams::{InputStream, TransformingInput};
use placeless_simenv::VirtualClock;
use proptest::prelude::*;
use std::sync::Arc;

/// The chain shapes the parity suite mixes freely.
#[derive(Clone, Copy, Debug, PartialEq)]
enum StageKind {
    /// Pass-through with a transform token: the zero-copy fast path.
    IdentitySigned,
    /// Appends a marker, signed: output longer than input.
    AppendSigned,
    /// Appends a marker, opaque (no token): restarts the signature chain
    /// from the actual output digest.
    AppendOpaque,
    /// Length-preserving byte transform (ASCII uppercase), signed.
    UpperSigned,
}

/// One configurable stage covering every [`StageKind`].
struct ParityStage {
    name: String,
    kind: StageKind,
    marker: u8,
    cost: u64,
}

impl ActiveProperty for ParityStage {
    fn name(&self) -> &str {
        &self.name
    }
    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }
    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> CoreResult<Box<dyn InputStream>> {
        match self.kind {
            StageKind::IdentitySigned => Ok(inner),
            StageKind::AppendSigned | StageKind::AppendOpaque => {
                let marker = self.marker;
                Ok(Box::new(TransformingInput::new(
                    inner,
                    Box::new(move |bytes: Bytes| {
                        let mut out = Vec::with_capacity(bytes.len() + 3);
                        out.extend_from_slice(&bytes);
                        out.extend_from_slice(&[b'[', marker, b']']);
                        Ok(Bytes::from(out))
                    }),
                )))
            }
            StageKind::UpperSigned => Ok(Box::new(TransformingInput::new(
                inner,
                Box::new(|bytes: Bytes| {
                    Ok(Bytes::from(
                        bytes
                            .iter()
                            .map(|b| b.to_ascii_uppercase())
                            .collect::<Vec<_>>(),
                    ))
                }),
            ))),
        }
    }
    fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        match self.kind {
            StageKind::AppendOpaque => None,
            _ => Some(vec![b'k', self.marker]),
        }
    }
    fn execution_cost_micros(&self) -> u64 {
        self.cost
    }
}

fn compile(clock: &VirtualClock, body: &[u8], kinds: &[StageKind]) -> TransformPlan {
    let stages: Vec<Arc<dyn ActiveProperty>> = kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            Arc::new(ParityStage {
                name: format!("parity-{i}-{kind:?}"),
                kind,
                marker: b'a' + (i as u8 % 26),
                cost: 10 + 7 * i as u64,
            }) as Arc<dyn ActiveProperty>
        })
        .collect();
    TransformPlan::compile(
        clock,
        DocumentId(1),
        UserId(1),
        MemoryProvider::new("parity", body.to_vec(), 100),
        stages,
        Vec::new(),
        PropsSnapshot::default(),
    )
}

/// Body sizes: zero-length, tiny, and chunk-boundary-straddling (the
/// streaming chunk size is 4096).
fn body_strategy() -> impl Strategy<Value = Vec<u8>> {
    (
        proptest::sample::select(vec![0usize, 1, 7, 63, 4095, 4096, 4097, 8205]),
        any::<u8>(),
    )
        .prop_map(|(len, seed)| {
            (0..len)
                .map(|i| seed.wrapping_add((i as u8).wrapping_mul(31)))
                .collect()
        })
}

fn chain_strategy() -> impl Strategy<Value = Vec<StageKind>> {
    proptest::collection::vec(
        proptest::sample::select(vec![
            StageKind::IdentitySigned,
            StageKind::AppendSigned,
            StageKind::AppendOpaque,
            StageKind::UpperSigned,
        ]),
        0..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn streaming_walk_matches_buffered_walk(
        body in body_strategy(),
        kinds in chain_strategy(),
    ) {
        let compile_clock = VirtualClock::new();
        let plan = compile(&compile_clock, &body, &kinds);
        let root_sig = md5(&body);

        // Buffered reference walk: thread the chain signature by hand, the
        // way the cache's miss loop ran before the streaming pipeline.
        let clock_b = VirtualClock::new();
        let mut report_b = plan.seed_report(&clock_b);
        let mut bytes_b = Bytes::from(body.clone());
        let mut chain_b = root_sig;
        let mut sigs_b = Vec::new();
        for index in 0..plan.len() {
            let stage_sig = plan.stage_signature(index, chain_b);
            bytes_b = plan
                .run_stage_buffered(&clock_b, index, &mut report_b, bytes_b, stage_sig)
                .expect("buffered stage");
            chain_b = stage_sig.unwrap_or_else(|| md5(&bytes_b));
            sigs_b.push(stage_sig);
        }

        // Streaming walk: one pass through the chunked pipeline.
        let clock_s = VirtualClock::new();
        let mut report_s = plan.seed_report(&clock_s);
        let mut pipeline = StagePipeline::from_root(&plan, Bytes::from(body.clone()), root_sig);
        let mut sigs_s = Vec::new();
        for index in 0..plan.len() {
            sigs_s.push(pipeline.stage_signature(index));
            pipeline.execute(&clock_s, index, &mut report_s).expect("streaming stage");
        }
        let final_chain_s = pipeline.chain_signature();
        let (bytes_s, content_sig_s) = pipeline.finish();
        let bytes_s = bytes_s.expect("streaming walk leaves bytes");

        // Identical output bytes, and the one-pass incremental digest must
        // equal a from-scratch hash of the buffered output.
        prop_assert_eq!(&bytes_s[..], &bytes_b[..]);
        prop_assert_eq!(content_sig_s, Some(md5(&bytes_b)));

        // Identical signature chains: every stage's addressing signature
        // and the final chain position (opaque stages restart the chain).
        prop_assert_eq!(&sigs_s, &sigs_b);
        prop_assert_eq!(final_chain_s, chain_b);

        // Identical cost accounting: virtual-clock time, replacement cost,
        // execution log, and per-stage records.
        prop_assert_eq!(clock_s.now().as_micros(), clock_b.now().as_micros());
        prop_assert_eq!(
            report_s.cost.effective_micros(),
            report_b.cost.effective_micros()
        );
        prop_assert_eq!(&report_s.executed, &report_b.executed);
        prop_assert_eq!(report_s.stages.len(), report_b.stages.len());
        for (s, b) in report_s.stages.iter().zip(report_b.stages.iter()) {
            prop_assert_eq!(&s.name, &b.name);
            prop_assert_eq!(s.cost_micros, b.cost_micros);
            prop_assert_eq!(s.cached, b.cached);
            prop_assert_eq!(s.signature, b.signature);
            prop_assert_eq!(s.bytes, b.bytes);
        }
    }

    /// A pure pass-through chain must forward the provider's refcounted
    /// slice untouched: same allocation, no copies, digest carried through
    /// without re-hashing (checked via pointer identity on the output).
    #[test]
    fn passthrough_chains_are_zero_copy(
        body in body_strategy(),
        chain_len in proptest::sample::select(vec![1usize, 2, 4]),
    ) {
        let kinds = vec![StageKind::IdentitySigned; chain_len];
        let clock = VirtualClock::new();
        let plan = compile(&clock, &body, &kinds);
        let input = Bytes::from(body.clone());
        let root_sig = md5(&input);
        let mut report = plan.seed_report(&clock);
        let mut pipeline = StagePipeline::from_root(&plan, input.clone(), root_sig);
        for index in 0..plan.len() {
            pipeline.execute(&clock, index, &mut report).expect("stage");
        }
        let (out, sig) = pipeline.finish();
        let out = out.expect("bytes");
        prop_assert_eq!(out.len(), input.len());
        if !input.is_empty() {
            prop_assert!(std::ptr::eq(out.as_ptr(), input.as_ptr()));
        }
        // The root digest rode the whole chain: no stage re-hashed.
        prop_assert_eq!(sig, Some(root_sig));
    }
}
