//! Model-based property tests for the repository substrates: the file
//! system, the DMS, and the mail store each replay random operation
//! sequences against plain reference models.

use placeless::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum FsOp {
    Create(u8, Vec<u8>),
    WriteDirect(u8, Vec<u8>),
    Unlink(u8),
}

fn fs_op() -> impl Strategy<Value = FsOp> {
    let content = proptest::collection::vec(any::<u8>(), 0..32);
    prop_oneof![
        (0u8..6, content.clone()).prop_map(|(p, c)| FsOp::Create(p, c)),
        (0u8..6, content).prop_map(|(p, c)| FsOp::WriteDirect(p, c)),
        (0u8..6).prop_map(FsOp::Unlink),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memfs_matches_reference_model(ops in proptest::collection::vec(fs_op(), 0..64)) {
        let clock = VirtualClock::new();
        let fs = MemFs::new(clock.clone());
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        let mut writes: HashMap<String, u64> = HashMap::new();
        for op in ops {
            clock.advance(1);
            match op {
                FsOp::Create(p, content) => {
                    let path = format!("/f{p}");
                    fs.create(&path, content.clone());
                    model.insert(path.clone(), content);
                    *writes.entry(path).or_insert(0) += 1;
                }
                FsOp::WriteDirect(p, content) => {
                    let path = format!("/f{p}");
                    let result = fs.write_direct(&path, content.clone());
                    if model.contains_key(&path) {
                        prop_assert!(result.is_ok());
                        model.insert(path.clone(), content);
                        *writes.entry(path).or_insert(0) += 1;
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                FsOp::Unlink(p) => {
                    let path = format!("/f{p}");
                    let existed = model.remove(&path).is_some();
                    prop_assert_eq!(fs.unlink(&path).is_ok(), existed);
                    // Unlinking ends the file's identity; a re-created
                    // file restarts its generation counter.
                    writes.remove(&path);
                }
            }
            // The views agree at every step.
            let mut paths: Vec<&String> = model.keys().collect();
            paths.sort();
            prop_assert_eq!(
                fs.list(),
                paths.iter().map(|s| s.to_string()).collect::<Vec<_>>()
            );
            for (path, content) in &model {
                prop_assert_eq!(&fs.read(path).unwrap()[..], &content[..]);
                // Generation counts every write since first creation.
                let stat = fs.stat(path).unwrap();
                prop_assert_eq!(stat.generation + 1, writes[path]);
            }
        }
    }

    #[test]
    fn dms_versions_are_append_only(
        contents in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..12),
    ) {
        let dms = Dms::new();
        dms.import("item", contents[0].clone());
        for (i, content) in contents.iter().enumerate().skip(1) {
            dms.check_out("item", "writer").unwrap();
            let version = dms.check_in("item", "writer", content.clone()).unwrap();
            prop_assert_eq!(version, i as u64 + 1);
        }
        // Every historical version is intact and the latest agrees.
        prop_assert_eq!(dms.latest_version("item").unwrap(), contents.len() as u64);
        for (i, content) in contents.iter().enumerate() {
            prop_assert_eq!(
                &dms.fetch_version("item", i as u64 + 1).unwrap()[..],
                &content[..]
            );
        }
        prop_assert_eq!(
            &dms.fetch_latest("item").unwrap()[..],
            &contents.last().unwrap()[..]
        );
    }

    #[test]
    fn mailstore_digest_reflects_every_delivery(
        subjects in proptest::collection::vec("[a-z]{1,8}", 1..16),
        limit in 1usize..8,
    ) {
        let mail = MailStore::new();
        for (i, subject) in subjects.iter().enumerate() {
            let seq = mail.deliver("inbox", "a@b", subject, "");
            prop_assert_eq!(seq, i as u64 + 1);
        }
        prop_assert_eq!(mail.count("inbox").unwrap(), subjects.len() as u64);
        let digest = String::from_utf8_lossy(&mail.digest("inbox", limit).unwrap()).into_owned();
        // The newest `limit` messages appear; older ones do not (modulo
        // duplicate subject strings, which we skip).
        let shown = &subjects[subjects.len().saturating_sub(limit)..];
        for subject in shown {
            prop_assert!(digest.contains(subject.as_str()), "{digest} missing {subject}");
        }
        for (i, subject) in subjects.iter().enumerate() {
            if i < subjects.len() - shown.len() && !shown.contains(subject) {
                prop_assert!(
                    !digest.contains(&format!(" {subject}\n")),
                    "{digest} leaked {subject}"
                );
            }
        }
        // Fetching by sequence matches insertion order.
        for (i, subject) in subjects.iter().enumerate() {
            prop_assert_eq!(&mail.fetch("inbox", i as u64 + 1).unwrap().subject, subject);
        }
    }

    #[test]
    fn webserver_revisions_count_all_mutations(
        edits in proptest::collection::vec(any::<bool>(), 0..24),
    ) {
        let server = WebServer::new("h");
        server.publish("/p", "v0", 1_000);
        let mut expected = 0u64;
        for through_http in edits {
            if through_http {
                server.put("/p", "x").unwrap();
            } else {
                server.edit_origin("/p", "y").unwrap();
            }
            expected += 1;
            prop_assert_eq!(server.revision("/p"), Some(expected));
            // Conditional GET: 304 on the current revision, fresh body on
            // any older pin.
            prop_assert!(server.conditional_get("/p", expected).unwrap().is_none());
            if expected > 0 {
                prop_assert!(server.conditional_get("/p", expected - 1).unwrap().is_some());
            }
        }
    }
}
