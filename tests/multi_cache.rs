//! Multiple caches sharing one invalidation bus: the paper assumes "the
//! number of caches storing any particular document for a user is likely
//! to be small" and that they "collaborate with the Placeless system" —
//! e.g. one cache co-located with the Placeless server plus one per
//! application machine.

use placeless::prelude::*;
use placeless_simenv::LatencyModel;
use std::sync::Arc;

const ALICE: UserId = UserId(1);
const BOB: UserId = UserId(2);

fn rig() -> (
    Arc<DocumentSpace>,
    Arc<DocumentCache>,
    Arc<DocumentCache>,
    DocumentId,
) {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("shared", "v1", 500);
    let doc = space.create_document(ALICE, provider);
    space.add_reference(BOB, doc).unwrap();
    space
        .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
        .unwrap();
    let quiet = || CacheConfig {
        local_latency: LatencyModel::FREE,
        ..CacheConfig::default()
    };
    let alice_cache = DocumentCache::new(space.clone(), quiet());
    let bob_cache = DocumentCache::new(space.clone(), quiet());
    (space, alice_cache, bob_cache, doc)
}

#[test]
fn a_write_through_one_cache_invalidates_the_other() {
    let (_space, alice_cache, bob_cache, doc) = rig();
    assert_eq!(alice_cache.read(ALICE, doc).unwrap(), "v1");
    assert_eq!(bob_cache.read(BOB, doc).unwrap(), "v1");

    // Alice saves through *her* cache; the notifier reaches Bob's cache.
    alice_cache.write(ALICE, doc, b"v2").unwrap();
    assert!(!bob_cache.contains(BOB, doc), "remote cache invalidated");
    assert_eq!(bob_cache.read(BOB, doc).unwrap(), "v2");
    assert!(bob_cache.stats().notifier_invalidations >= 1);
}

#[test]
fn notifications_fan_out_to_every_subscribed_cache() {
    let (space, alice_cache, bob_cache, doc) = rig();
    alice_cache.read(ALICE, doc).unwrap();
    alice_cache.read(BOB, doc).unwrap();
    bob_cache.read(ALICE, doc).unwrap();
    bob_cache.read(BOB, doc).unwrap();
    space.write_document(ALICE, doc, b"v2").unwrap();
    // Both caches dropped both users' entries (4 invalidations total,
    // 2 per cache).
    assert!(alice_cache.is_empty());
    assert!(bob_cache.is_empty());
    assert_eq!(alice_cache.stats().notifier_invalidations, 2);
    assert_eq!(bob_cache.stats().notifier_invalidations, 2);
}

#[test]
fn write_back_cache_coalesces_saves_then_publishes() {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("draft", "start", 500);
    let doc = space.create_document(ALICE, provider.clone());
    space
        .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
        .unwrap();
    let reader_cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    let writer_cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            write_mode: WriteMode::Back,
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );

    reader_cache.read(ALICE, doc).unwrap();
    // Three quick saves buffer locally; the middleware sees nothing yet.
    writer_cache.write(ALICE, doc, b"draft 1").unwrap();
    writer_cache.write(ALICE, doc, b"draft 2").unwrap();
    writer_cache.write(ALICE, doc, b"draft 3").unwrap();
    assert_eq!(provider.content(), "start");
    assert!(reader_cache.contains(ALICE, doc), "no invalidation yet");
    // The writer reads their own buffered draft.
    assert_eq!(writer_cache.read(ALICE, doc).unwrap(), "draft 3");

    // Flush: one write reaches the provider, notifiers fire, the reader
    // cache drops its stale entry.
    let _ = writer_cache.flush().unwrap();
    assert_eq!(provider.content(), "draft 3");
    assert!(!reader_cache.contains(ALICE, doc));
    assert_eq!(writer_cache.stats().flushes, 1);
}

#[test]
fn per_user_versions_do_not_interfere_across_caches() {
    let (space, alice_cache, bob_cache, doc) = rig();
    space
        .attach_active(Scope::Personal(ALICE), doc, Translate::to("fr"))
        .unwrap();
    space
        .attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())
        .unwrap();
    // Different users' views through different caches.
    let provider_text = bob_cache.read(BOB, doc).unwrap();
    let alice_text = alice_cache.read(ALICE, doc).unwrap();
    assert_eq!(provider_text, "v1");
    assert_eq!(alice_text, "v1"); // "v1" has no dictionary words
                                  // Alice's personal change invalidates only her entries — in both
                                  // caches — while Bob's survive everywhere.
    alice_cache.read(BOB, doc).unwrap();
    space
        .attach_active(Scope::Personal(ALICE), doc, Watermark::new())
        .unwrap();
    assert!(!alice_cache.contains(ALICE, doc));
    assert!(alice_cache.contains(BOB, doc));
    assert!(bob_cache.contains(BOB, doc));
}
