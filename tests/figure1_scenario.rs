//! Integration test for the paper's Figure 1: one base document, three
//! users' references, universal and personal properties — verifying the
//! visibility and scoping rules end to end.

use placeless::prelude::*;
use placeless_simenv::LatencyModel;
use std::sync::Arc;

const EYAL: UserId = UserId(1);
const PAUL: UserId = UserId(2);
const DOUG: UserId = UserId(3);

fn hotos_setup() -> (Arc<DocumentSpace>, DocumentId, Arc<Versioning>) {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let provider = MemoryProvider::new(
        "hotos.doc",
        "Caching in teh Placeless Documents system poses new challenges.",
        1_000,
    );
    let doc = space.create_document(EYAL, provider);
    space.add_reference(PAUL, doc).unwrap();
    space.add_reference(DOUG, doc).unwrap();

    // Universal: versioning on the base.
    let versioning = Versioning::new();
    space
        .attach_active(Scope::Universal, doc, versioning.clone())
        .unwrap();

    // Personal: Eyal spell-corrects; Paul labels; Doug sets a deadline.
    space
        .attach_active(Scope::Personal(EYAL), doc, SpellCheck::new())
        .unwrap();
    space
        .attach_static(
            Scope::Personal(PAUL),
            doc,
            "label",
            "1999 workshop submission",
        )
        .unwrap();
    space
        .attach_static(Scope::Personal(DOUG), doc, "deadline", "read by 11/30")
        .unwrap();

    (space, doc, versioning)
}

#[test]
fn personal_properties_personalize_content() {
    let (space, doc, _versioning) = hotos_setup();
    let (eyal_view, _) = space.read_document(EYAL, doc).unwrap();
    let (paul_view, _) = space.read_document(PAUL, doc).unwrap();
    // Only Eyal's view is spell-corrected.
    assert!(String::from_utf8_lossy(&eyal_view).contains("the Placeless"));
    assert!(String::from_utf8_lossy(&paul_view).contains("teh Placeless"));
}

#[test]
fn personal_statics_are_invisible_to_others() {
    let (space, doc, _versioning) = hotos_setup();
    // Doug sees his deadline; Eyal and Paul do not.
    assert!(space.property_value(DOUG, doc, "deadline").is_some());
    assert!(space.property_value(EYAL, doc, "deadline").is_none());
    assert!(space.property_value(PAUL, doc, "deadline").is_none());
    // Paul sees his label; the others do not.
    assert!(space.property_value(PAUL, doc, "label").is_some());
    assert!(space.property_value(DOUG, doc, "label").is_none());
}

#[test]
fn universal_versioning_is_visible_to_everyone() {
    let (space, doc, versioning) = hotos_setup();
    // Doug saves a new draft.
    space
        .write_document(DOUG, doc, b"Doug rewrote the abstract.")
        .unwrap();
    assert_eq!(versioning.version_count(), 1);
    // All three users see the version link (it lives on the base).
    for user in [EYAL, PAUL, DOUG] {
        assert!(
            space.property_value(user, doc, "version:1").is_some(),
            "{user} should see the universal version link"
        );
    }
}

#[test]
fn writes_by_one_user_are_read_by_all_with_their_own_transforms() {
    let (space, doc, _versioning) = hotos_setup();
    space
        .write_document(PAUL, doc, b"Paul adds: teh workshop is in March.")
        .unwrap();
    let (eyal_view, _) = space.read_document(EYAL, doc).unwrap();
    let (doug_view, _) = space.read_document(DOUG, doc).unwrap();
    assert_eq!(eyal_view, "Paul adds: the workshop is in March.");
    assert_eq!(doug_view, "Paul adds: teh workshop is in March.");
}

#[test]
fn each_user_reference_is_independent() {
    let (space, doc, _versioning) = hotos_setup();
    assert_eq!(space.users_of(doc), vec![EYAL, PAUL, DOUG]);
    // Removing Paul's label does not disturb Doug's deadline.
    let paul_props = space.list_properties(Scope::Personal(PAUL), doc).unwrap();
    let (label_id, _) = paul_props[0];
    space
        .remove_property(Scope::Personal(PAUL), doc, label_id)
        .unwrap();
    assert!(space.property_value(PAUL, doc, "label").is_none());
    assert!(space.property_value(DOUG, doc, "deadline").is_some());
}
