//! Integration tests for the §5 future-work mechanisms implemented here:
//! collection-aware prefetching and QoS pinning.

use placeless::prelude::*;
use placeless_cache::PrefetchConfig;
use placeless_simenv::LatencyModel;
use std::sync::Arc;

const USER: UserId = UserId(1);

fn space_with_docs(n: usize, body: &str) -> (Arc<DocumentSpace>, Vec<DocumentId>) {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let docs = (0..n)
        .map(|i| {
            let provider = MemoryProvider::new(&format!("d{i}"), format!("{body} #{i}"), 10_000);
            space.create_document(USER, provider)
        })
        .collect();
    (space, docs)
}

#[test]
fn collection_membership_round_trips() {
    let (space, docs) = space_with_docs(3, "report");
    space.add_to_collection("budget", docs[0]).unwrap();
    space.add_to_collection("budget", docs[1]).unwrap();
    space.add_to_collection("drafts", docs[1]).unwrap();
    assert_eq!(space.collection_members("budget"), vec![docs[0], docs[1]]);
    assert_eq!(space.collections_of(docs[1]), vec!["budget", "drafts"]);
    // Membership is visible as a normal static property.
    assert_eq!(
        space
            .property_value(USER, docs[0], "collection")
            .unwrap()
            .as_str(),
        Some("budget")
    );
    space.remove_from_collection("budget", docs[1]).unwrap();
    assert_eq!(space.collection_members("budget"), vec![docs[0]]);
}

#[test]
fn prefetch_warms_collection_siblings() {
    let (space, docs) = space_with_docs(5, "chapter");
    for &doc in &docs {
        space.add_to_collection("book", doc).unwrap();
    }
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            prefetch: PrefetchConfig::up_to(16),
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    // One demand miss on the first chapter...
    cache.read(USER, docs[0]).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.prefetches, 4, "siblings pulled in the same pass");
    // ...and the rest of the book is already resident.
    for &doc in &docs[1..] {
        assert!(cache.contains(USER, doc));
    }
    let clock = space.clock();
    let t0 = clock.now();
    cache.read(USER, docs[3]).unwrap();
    assert!(clock.now().since(t0) < 1_000, "served locally");
    assert_eq!(cache.stats().prefetch_hits, 1);
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn prefetch_budget_bounds_the_drag() {
    let (space, docs) = space_with_docs(10, "page");
    for &doc in &docs {
        space.add_to_collection("site", doc).unwrap();
    }
    let cache = DocumentCache::new(
        space,
        CacheConfig {
            prefetch: PrefetchConfig::up_to(3),
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    cache.read(USER, docs[0]).unwrap();
    assert_eq!(cache.stats().prefetches, 3);
    assert_eq!(cache.len(), 4);
}

#[test]
fn prefetch_off_touches_nothing_extra() {
    let (space, docs) = space_with_docs(5, "chapter");
    for &doc in &docs {
        space.add_to_collection("book", doc).unwrap();
    }
    let cache = DocumentCache::new(
        space,
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    cache.read(USER, docs[0]).unwrap();
    assert_eq!(cache.stats().prefetches, 0);
    assert_eq!(cache.len(), 1);
}

#[test]
fn prefetch_skips_users_without_references() {
    let (space, docs) = space_with_docs(3, "memo");
    for &doc in &docs {
        space.add_to_collection("memos", doc).unwrap();
    }
    let bob = UserId(2);
    // Bob only has a reference to the first memo.
    space.add_reference(bob, docs[0]).unwrap();
    let cache = DocumentCache::new(
        space,
        CacheConfig {
            prefetch: PrefetchConfig::up_to(16),
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    cache.read(bob, docs[0]).unwrap();
    assert_eq!(cache.stats().prefetches, 0, "no references, no prefetch");
}

#[test]
fn pinned_entries_survive_any_eviction_pressure() {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    // One pinned document plus many fillers, under a tiny capacity.
    let pinned_provider = MemoryProvider::new("pinned", vec![b'p'; 512], 10_000);
    let pinned_doc = space.create_document(USER, pinned_provider);
    space
        .attach_active(
            Scope::Personal(USER),
            pinned_doc,
            QosProperty::always_available(),
        )
        .unwrap();
    let mut fillers = Vec::new();
    for i in 0..20u8 {
        let mut body = vec![b'f'; 512];
        body[0] = i;
        fillers
            .push(space.create_document(USER, MemoryProvider::new(&format!("f{i}"), body, 1_000)));
    }
    let cache = DocumentCache::new(
        space,
        CacheConfig {
            capacity_bytes: 2_048,
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    cache.read(USER, pinned_doc).unwrap();
    assert_eq!(cache.stats().pinned_fills, 1);
    for &doc in &fillers {
        cache.read(USER, doc).unwrap();
    }
    assert!(cache.stats().evictions > 0, "fillers churned");
    assert!(
        cache.contains(USER, pinned_doc),
        "the always-available entry was never evicted"
    );
    // And it still serves hits.
    let t0 = cache.stats().hits;
    cache.read(USER, pinned_doc).unwrap();
    assert_eq!(cache.stats().hits, t0 + 1);
}

#[test]
fn pinned_entries_still_honor_invalidations() {
    // Pinning protects from *eviction*, not from *staleness*.
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("pinned", "v1", 1_000);
    let doc = space.create_document(USER, provider.clone());
    space
        .attach_active(Scope::Personal(USER), doc, QosProperty::always_available())
        .unwrap();
    let cache = DocumentCache::new(
        space,
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    assert_eq!(cache.read(USER, doc).unwrap(), "v1");
    provider.set_out_of_band("v2");
    assert_eq!(cache.read(USER, doc).unwrap(), "v2", "verifier still runs");
}

#[test]
fn adding_to_collection_does_not_invalidate_content_caches() {
    let (space, docs) = space_with_docs(2, "doc");
    space
        .attach_active(Scope::Universal, docs[0], PropertyChangeNotifier::any())
        .unwrap();
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    cache.read(USER, docs[0]).unwrap();
    space.add_to_collection("team", docs[0]).unwrap();
    assert!(
        cache.contains(USER, docs[0]),
        "membership labels do not change content"
    );
}
