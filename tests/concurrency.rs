//! Concurrency tests: the middleware and the cache are shared-state
//! services; readers, writers, property mutators, and invalidators must be
//! able to run from multiple threads without deadlock or corruption.

use crossbeam::thread;
use placeless::prelude::*;
use placeless_simenv::LatencyModel;
use std::sync::Arc;

fn setup(docs: usize) -> (Arc<DocumentSpace>, Arc<DocumentCache>, Vec<DocumentId>) {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let ids = (0..docs)
        .map(|i| {
            let provider = MemoryProvider::new(&format!("d{i}"), format!("content {i}"), 100);
            let doc = space.create_document(UserId(1), provider);
            for u in 2..=4 {
                space.add_reference(UserId(u), doc).unwrap();
            }
            doc
        })
        .collect::<Vec<_>>();
    for &doc in &ids {
        space
            .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
            .unwrap();
    }
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    (space, cache, ids)
}

#[test]
fn concurrent_readers_converge() {
    let (_space, cache, docs) = setup(8);
    thread::scope(|scope| {
        for user in 1..=4u64 {
            let cache = &cache;
            let docs = &docs;
            scope.spawn(move |_| {
                for round in 0..200 {
                    let doc = docs[(round + user as usize) % docs.len()];
                    let bytes = cache.read(UserId(user), doc).unwrap();
                    assert!(bytes.starts_with(b"content "));
                }
            });
        }
    })
    .unwrap();
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, 800);
    assert!(stats.hit_rate().unwrap() > 0.9);
}

#[test]
fn readers_and_writers_race_without_corruption() {
    let (space, cache, docs) = setup(4);
    thread::scope(|scope| {
        // Three reader threads.
        for user in 2..=4u64 {
            let cache = &cache;
            let docs = &docs;
            scope.spawn(move |_| {
                for round in 0..150 {
                    let doc = docs[round % docs.len()];
                    let bytes = cache.read(UserId(user), doc).unwrap();
                    // Every observed value is either the original or some
                    // complete write — never a torn mixture.
                    let text = String::from_utf8_lossy(&bytes);
                    assert!(
                        text.starts_with("content ") || text.starts_with("rev "),
                        "torn read: {text}"
                    );
                }
            });
        }
        // One writer thread mutating through the middleware.
        let space = &space;
        let docs = &docs;
        scope.spawn(move |_| {
            for round in 0..100 {
                let doc = docs[round % docs.len()];
                space
                    .write_document(UserId(1), doc, format!("rev {round}").as_bytes())
                    .unwrap();
            }
        });
    })
    .unwrap();
    // After the dust settles, a fresh read sees the final write.
    let last = cache.read(UserId(2), docs[3]).unwrap();
    let text = String::from_utf8_lossy(&last);
    assert!(text.starts_with("rev ") || text.starts_with("content "));
}

#[test]
fn property_mutations_race_with_reads() {
    let (space, cache, docs) = setup(2);
    space
        .attach_active(Scope::Universal, docs[0], PropertyChangeNotifier::any())
        .unwrap();
    thread::scope(|scope| {
        let cache = &cache;
        let doc = docs[0];
        scope.spawn(move |_| {
            for _ in 0..150 {
                let _ = cache.read(UserId(2), doc).unwrap();
            }
        });
        let space = &space;
        scope.spawn(move |_| {
            for i in 0..50 {
                let id = space
                    .attach_active(Scope::Personal(UserId(2)), doc, Translate::to("fr"))
                    .unwrap();
                let _ = i;
                space
                    .remove_property(Scope::Personal(UserId(2)), doc, id)
                    .unwrap();
            }
        });
    })
    .unwrap();
    // Terminal state: no translator attached, original text served.
    let bytes = cache.read(UserId(2), docs[0]).unwrap();
    assert_eq!(bytes, "content 0");
}

#[test]
fn invalidations_race_with_hits() {
    let (space, cache, docs) = setup(4);
    for &doc in &docs {
        cache.read(UserId(1), doc).unwrap();
    }
    thread::scope(|scope| {
        let cache = &cache;
        let docs = &docs;
        scope.spawn(move |_| {
            for round in 0..300 {
                let _ = cache.read(UserId(1), docs[round % docs.len()]).unwrap();
            }
        });
        let space = &space;
        scope.spawn(move |_| {
            for round in 0..300 {
                space
                    .bus()
                    .post(Invalidation::Document(docs[round % docs.len()]));
            }
        });
    })
    .unwrap();
    let stats = cache.stats();
    assert!(stats.notifier_invalidations > 0);
    assert_eq!(stats.hits + stats.misses, 300 + 4);
}

#[test]
fn concurrent_nfs_clients() {
    let (space, _cache, docs) = setup(1);
    let nfs = NfsServer::new(DirectBackend::new(space));
    nfs.export("/shared.txt", docs[0]);
    thread::scope(|scope| {
        for user in 1..=4u64 {
            let nfs = nfs.clone();
            scope.spawn(move |_| {
                for _ in 0..50 {
                    let h = nfs
                        .open(UserId(user), "/shared.txt", OpenMode::Read)
                        .unwrap();
                    let _ = nfs.read(h, 0, 64).unwrap();
                    nfs.close(h).unwrap();
                }
            });
        }
    })
    .unwrap();
    assert_eq!(nfs.open_count(), 0, "every handle closed");
}
