//! Model-based property test for the NFS adapter: random open/read/write/
//! close sequences against a plain in-memory reference model must agree
//! byte-for-byte.

use placeless::prelude::*;
use placeless_simenv::LatencyModel;
use proptest::prelude::*;
use std::sync::Arc;

const USER: UserId = UserId(1);

/// Operations the model replays.
#[derive(Debug, Clone)]
enum NfsOp {
    /// Full-file read via a read handle.
    ReadAll,
    /// Truncating write of the given content.
    WriteAll(Vec<u8>),
    /// Read-modify-write patch at an offset.
    Patch { offset: u8, data: Vec<u8> },
    /// Attribute probe.
    GetAttr,
}

fn op_strategy() -> impl Strategy<Value = NfsOp> {
    prop_oneof![
        Just(NfsOp::ReadAll),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(NfsOp::WriteAll),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..16))
            .prop_map(|(offset, data)| NfsOp::Patch { offset, data }),
        Just(NfsOp::GetAttr),
    ]
}

fn setup(initial: &[u8]) -> (Arc<NfsServer>, Arc<MemoryProvider>) {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("f", bytes::Bytes::copy_from_slice(initial), 0);
    let doc = space.create_document(USER, provider.clone());
    let nfs = NfsServer::new(DirectBackend::new(space));
    nfs.export("/f", doc);
    (nfs, provider)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nfs_matches_reference_model(
        initial in proptest::collection::vec(any::<u8>(), 0..64),
        ops in proptest::collection::vec(op_strategy(), 0..24),
    ) {
        let (nfs, provider) = setup(&initial);
        let mut model: Vec<u8> = initial;

        for op in ops {
            match op {
                NfsOp::ReadAll => {
                    let h = nfs.open(USER, "/f", OpenMode::Read).unwrap();
                    let mut got = Vec::new();
                    let mut offset = 0u64;
                    loop {
                        let chunk = nfs.read(h, offset, 7).unwrap();
                        if chunk.is_empty() {
                            break;
                        }
                        offset += chunk.len() as u64;
                        got.extend_from_slice(&chunk);
                    }
                    nfs.close(h).unwrap();
                    prop_assert_eq!(&got, &model);
                }
                NfsOp::WriteAll(data) => {
                    let h = nfs.open(USER, "/f", OpenMode::Write).unwrap();
                    nfs.write(h, 0, &data).unwrap();
                    nfs.close(h).unwrap();
                    model = data;
                }
                NfsOp::Patch { offset, data } => {
                    let h = nfs.open(USER, "/f", OpenMode::ReadWrite).unwrap();
                    nfs.write(h, offset as u64, &data).unwrap();
                    nfs.close(h).unwrap();
                    let end = offset as usize + data.len();
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                    model[offset as usize..end].copy_from_slice(&data);
                }
                NfsOp::GetAttr => {
                    let attr = nfs.getattr(USER, "/f").unwrap();
                    prop_assert_eq!(attr.size, model.len() as u64);
                }
            }
            // The provider always holds exactly the model bytes.
            prop_assert_eq!(&provider.content()[..], &model[..]);
        }
        prop_assert_eq!(nfs.open_count(), 0, "no leaked handles");
    }
}
