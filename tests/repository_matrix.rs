//! The repository matrix: one cache, five source types, each kept
//! consistent by its *native* mechanism.
//!
//! "Documents originate from any number of repositories, many of which
//! provide different mechanisms to handle cache consistency" — the whole
//! point of the notifier/verifier design is that a single cache absorbs all
//! of them. This suite runs the same warm-then-mutate-then-read scenario
//! against every repository and checks both the freshness outcome and
//! *which* mechanism did the work.

use placeless::prelude::*;
use placeless_simenv::LatencyModel;
use std::sync::Arc;

const USER: UserId = UserId(1);

fn rig() -> (Arc<DocumentSpace>, Arc<DocumentCache>, VirtualClock) {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    (space, cache, clock)
}

fn lan() -> Link {
    Link::new(1_000, 1_000_000, 0.0, 3)
}

#[test]
fn memfs_mtime_polling() {
    let (space, cache, clock) = rig();
    let fs = MemFs::new(clock.clone());
    fs.create("/a", "v1");
    let doc = space.create_document(USER, FsProvider::new(fs.clone(), "/a", lan()));
    assert_eq!(cache.read(USER, doc).unwrap(), "v1");
    fs.write_direct("/a", "v2").unwrap();
    assert_eq!(cache.read(USER, doc).unwrap(), "v2");
    let stats = cache.stats();
    assert_eq!(stats.verifier_invalidations, 1, "mtime poll caught it");
    assert_eq!(stats.notifier_invalidations, 0);
}

#[test]
fn web_ttl_has_a_bounded_blind_spot() {
    let (space, cache, clock) = rig();
    let server = WebServer::new("w");
    server.publish("/p", "v1", 5_000);
    let doc = space.create_document(USER, WebProvider::new(server.clone(), "/p", lan()));
    assert_eq!(cache.read(USER, doc).unwrap(), "v1");
    server.edit_origin("/p", "v2").unwrap();
    // Blind inside the TTL, fresh after.
    assert_eq!(cache.read(USER, doc).unwrap(), "v1");
    clock.advance(5_001);
    assert_eq!(cache.read(USER, doc).unwrap(), "v2");
    assert_eq!(cache.stats().verifier_invalidations, 1);
}

#[test]
fn web_revalidation_has_no_blind_spot() {
    let (space, cache, _clock) = rig();
    let server = WebServer::new("w");
    server.publish("/p", "v1", 60_000_000);
    let doc = space.create_document(
        USER,
        WebProvider::with_revalidation(server.clone(), "/p", lan()),
    );
    assert_eq!(cache.read(USER, doc).unwrap(), "v1");
    server.edit_origin("/p", "v2").unwrap();
    assert_eq!(
        cache.read(USER, doc).unwrap(),
        "v2",
        "caught inside the TTL"
    );
    assert_eq!(cache.stats().verifier_invalidations, 1);
}

#[test]
fn dms_callbacks_push_instead_of_poll() {
    let (space, cache, _clock) = rig();
    let dms = Dms::new();
    dms.import("spec", "v1");
    let provider = DmsProvider::new(dms.clone(), "spec", "placeless", lan());
    let doc = space.create_document(USER, provider.clone());
    provider.wire_invalidations(space.bus().clone(), doc);
    assert_eq!(cache.read(USER, doc).unwrap(), "v1");
    dms.check_out("spec", "karin").unwrap();
    dms.check_in("spec", "karin", "v2").unwrap();
    // The notifier (server callback) did the invalidation; the pinned
    // version verifier would also have caught it, but the entry is
    // already gone by read time.
    assert!(!cache.contains(USER, doc));
    assert_eq!(cache.read(USER, doc).unwrap(), "v2");
    let stats = cache.stats();
    assert_eq!(stats.notifier_invalidations, 1);
    assert_eq!(stats.verifier_invalidations, 0);
}

#[test]
fn mailstore_count_verifier() {
    let (space, cache, _clock) = rig();
    let mail = MailStore::new();
    mail.deliver("inbox", "a@b", "first", "");
    let doc = space.create_document(
        USER,
        MailDigestProvider::new(mail.clone(), "inbox", 10, lan()),
    );
    let digest = cache.read(USER, doc).unwrap();
    assert!(String::from_utf8_lossy(&digest).contains("first"));
    mail.deliver("inbox", "c@d", "second", "");
    let digest = cache.read(USER, doc).unwrap();
    assert!(String::from_utf8_lossy(&digest).contains("second"));
    assert_eq!(cache.stats().verifier_invalidations, 1);
}

#[test]
fn livefeed_is_never_cached() {
    let (space, cache, _clock) = rig();
    let feed = LiveFeed::new("cam", 64, 9);
    let doc = space.create_document(USER, LiveFeedProvider::new(feed, lan()));
    let a = cache.read(USER, doc).unwrap();
    let b = cache.read(USER, doc).unwrap();
    assert_ne!(a, b);
    let stats = cache.stats();
    assert_eq!(stats.uncacheable_reads, 2);
    assert_eq!(stats.hits + stats.misses, 0);
    assert!(cache.is_empty());
}

#[test]
fn one_cache_absorbs_all_sources_at_once() {
    // The headline claim: a single cache front-ends every repository type
    // simultaneously, each consistent through its own mechanism.
    let (space, cache, clock) = rig();

    let fs = MemFs::new(clock.clone());
    fs.create("/f", "fs v1");
    let fs_doc = space.create_document(USER, FsProvider::new(fs.clone(), "/f", lan()));

    let server = WebServer::new("w");
    server.publish("/p", "web v1", 60_000_000);
    let web_doc = space.create_document(
        USER,
        WebProvider::with_revalidation(server.clone(), "/p", lan()),
    );

    let dms = Dms::new();
    dms.import("s", "dms v1");
    let dms_provider = DmsProvider::new(dms.clone(), "s", "placeless", lan());
    let dms_doc = space.create_document(USER, dms_provider.clone());
    dms_provider.wire_invalidations(space.bus().clone(), dms_doc);

    let mail = MailStore::new();
    mail.deliver("inbox", "x@y", "hello", "");
    let mail_doc = space.create_document(
        USER,
        MailDigestProvider::new(mail.clone(), "inbox", 5, lan()),
    );

    // Warm everything.
    for &doc in &[fs_doc, web_doc, dms_doc, mail_doc] {
        cache.read(USER, doc).unwrap();
    }
    assert_eq!(cache.len(), 4);

    // Mutate every source through its own side door.
    fs.write_direct("/f", "fs v2").unwrap();
    server.edit_origin("/p", "web v2").unwrap();
    dms.check_out("s", "who").unwrap();
    dms.check_in("s", "who", "dms v2").unwrap();
    mail.deliver("inbox", "z@w", "again", "");

    // Every read is fresh.
    assert_eq!(cache.read(USER, fs_doc).unwrap(), "fs v2");
    assert_eq!(cache.read(USER, web_doc).unwrap(), "web v2");
    assert_eq!(cache.read(USER, dms_doc).unwrap(), "dms v2");
    assert!(String::from_utf8_lossy(&cache.read(USER, mail_doc).unwrap()).contains("again"));
    let stats = cache.stats();
    assert_eq!(stats.verifier_invalidations, 3, "fs + web + mail");
    assert_eq!(stats.notifier_invalidations, 1, "dms callback");
}
