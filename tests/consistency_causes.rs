//! Integration tests for §3's four causes of cached-content invalidation,
//! each exercised end to end through a real cache.

use placeless::prelude::*;
use placeless_simenv::LatencyModel;
use std::sync::Arc;

const USER: UserId = UserId(1);
const OTHER: UserId = UserId(2);

struct Rig {
    space: Arc<DocumentSpace>,
    cache: Arc<DocumentCache>,
    provider: Arc<MemoryProvider>,
    doc: DocumentId,
}

fn rig(content: &str) -> Rig {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("doc", content.to_owned(), 500);
    let doc = space.create_document(USER, provider.clone());
    space.add_reference(OTHER, doc).unwrap();
    space
        .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
        .unwrap();
    space
        .attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())
        .unwrap();
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    Rig {
        space,
        cache,
        provider,
        doc,
    }
}

#[test]
fn cause1_source_modified_through_placeless() {
    let r = rig("v1");
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "v1");
    // Another user writes through the middleware; the base notifier fires.
    r.space.write_document(OTHER, r.doc, b"v2").unwrap();
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "v2");
    assert!(r.cache.stats().notifier_invalidations >= 1);
}

#[test]
fn cause1_source_modified_outside_placeless() {
    let r = rig("v1");
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "v1");
    // Out-of-band edit: no event fires — only the provider's verifier
    // (mtime poll) can catch this.
    r.provider.set_out_of_band("v2");
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "v2");
    let stats = r.cache.stats();
    assert_eq!(stats.verifier_invalidations, 1);
    assert_eq!(stats.notifier_invalidations, 0);
}

#[test]
fn cause2_property_added_removed_modified() {
    let r = rig("hello world");
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "hello world");

    // Added: the cached untranslated version must go.
    let id = r
        .space
        .attach_active(Scope::Personal(USER), r.doc, Translate::to("fr"))
        .unwrap();
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "bonjour monde");

    // Modified: upgrade to Spanish in place.
    r.space
        .modify_property(
            Scope::Personal(USER),
            r.doc,
            id,
            AttachedProperty::Active(Translate::to("es")),
        )
        .unwrap();
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "hola mundo");

    // Removed: back to the original.
    r.space
        .remove_property(Scope::Personal(USER), r.doc, id)
        .unwrap();
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "hello world");

    assert!(r.cache.stats().notifier_invalidations >= 3);
}

#[test]
fn cause2_personal_change_spares_other_users_entries() {
    let r = rig("hello world");
    r.cache.read(USER, r.doc).unwrap();
    r.cache.read(OTHER, r.doc).unwrap();
    // USER's personal property change invalidates only USER's entry.
    r.space
        .attach_active(Scope::Personal(USER), r.doc, Translate::to("fr"))
        .unwrap();
    assert!(!r.cache.contains(USER, r.doc));
    assert!(r.cache.contains(OTHER, r.doc));
}

#[test]
fn cause3_property_order_changed() {
    let r = rig("teh document");
    r.space
        .attach_active(Scope::Personal(USER), r.doc, SpellCheck::new())
        .unwrap();
    let translate_id = r
        .space
        .attach_active(Scope::Personal(USER), r.doc, Translate::to("fr"))
        .unwrap();
    // spell → translate: "teh"→"the"→"le".
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "le document");
    // Reorder: translate first, spell second: "teh" survives translation,
    // then gets corrected — different bytes, so the entry must have been
    // invalidated.
    r.space
        .reorder_property(Scope::Personal(USER), r.doc, translate_id, 0)
        .unwrap();
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "the document");
    assert!(r.cache.stats().notifier_invalidations >= 1);
}

#[test]
fn cause4_external_information_changed() {
    let r = rig("price: ");
    let quotes = SimpleExternal::new("stock:XRX", "42.50");
    let env = ExtEnv::new();
    env.add(quotes.clone());
    let ticker = ScriptProperty::compile(
        "ticker",
        "@watch_ext(\"stock:XRX\")\nappend_ext(\"stock:XRX\")",
        env,
    )
    .unwrap();
    r.space
        .attach_active(Scope::Personal(USER), r.doc, ticker)
        .unwrap();
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "price: 42.50");
    quotes.set("43.25");
    assert_eq!(r.cache.read(USER, r.doc).unwrap(), "price: 43.25");
    assert!(r.cache.stats().verifier_invalidations >= 1);
}

#[test]
fn web_ttl_bounds_staleness_for_unannounced_origin_edits() {
    // The WWW case: within the TTL even an origin edit goes unseen; after
    // expiry the verifier forces a refill.
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let server = WebServer::new("news.com");
    server.publish("/front", "headline v1", 10_000);
    let provider = WebProvider::new(
        server.clone(),
        "/front",
        Link::new(1_000, 1_000_000, 0.0, 5),
    );
    let doc = space.create_document(USER, provider);
    let cache = DocumentCache::new(
        space,
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    assert_eq!(cache.read(USER, doc).unwrap(), "headline v1");
    server.edit_origin("/front", "headline v2").unwrap();
    // Still within the TTL: stale by design.
    assert_eq!(cache.read(USER, doc).unwrap(), "headline v1");
    clock.advance(10_001);
    assert_eq!(cache.read(USER, doc).unwrap(), "headline v2");
}

#[test]
fn dms_callbacks_invalidate_without_polling() {
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
    let dms = Dms::new();
    dms.import("spec", "spec v1");
    let provider = DmsProvider::new(
        dms.clone(),
        "spec",
        "placeless",
        Link::new(500, 1_000_000, 0.0, 6),
    );
    let doc = space.create_document(USER, provider.clone());
    // Wire the DMS's native change callback to the invalidation bus and
    // run the cache with verifiers off: the callback alone keeps it fresh.
    provider.wire_invalidations(space.bus().clone(), doc);
    let cache = DocumentCache::new(
        space,
        CacheConfig {
            run_verifiers: false,
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        },
    );
    assert_eq!(cache.read(USER, doc).unwrap(), "spec v1");
    dms.check_out("spec", "someone").unwrap();
    dms.check_in("spec", "someone", "spec v2").unwrap();
    assert_eq!(cache.read(USER, doc).unwrap(), "spec v2");
    assert_eq!(cache.stats().notifier_invalidations, 1);
}
