//! # Placeless Documents — caching documents with active properties
//!
//! A complete Rust reproduction of *Caching Documents with Active
//! Properties* (de Lara et al., HotOS VII, 1999): the Placeless Documents
//! middleware, its active-property framework, the repository zoo, the NFS
//! adapter for legacy applications, and the full caching architecture —
//! notifiers, verifiers, cacheability indicators, replacement costs, and a
//! Greedy-Dual-Size cache with content-signature sharing.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] — the middleware ([`core::space::DocumentSpace`], properties,
//!   streams, verifiers, notifiers);
//! * [`repository`] — content sources (file system, web server, DMS, live
//!   feeds, external info);
//! * [`cache`] — the document cache and replacement policies;
//! * [`properties`] — the standard property library;
//! * [`proplang`] — runtime-authored properties via a small interpreter;
//! * [`nfs`] — the legacy-application adapter;
//! * [`simenv`] — virtual clock, links, and workload generation.
//!
//! See `examples/quickstart.rs` for a first tour.

pub use placeless_cache as cache;
pub use placeless_core as core;
pub use placeless_nfs as nfs;
pub use placeless_properties as properties;
pub use placeless_proplang as proplang;
pub use placeless_repository as repository;
pub use placeless_simenv as simenv;

/// One-stop imports for applications.
pub mod prelude {
    pub use placeless_cache::{
        CacheConfig, DocumentCache, HitClass, ReadOptions, ReadOutcome, WriteMode,
    };
    pub use placeless_core::prelude::*;
    pub use placeless_nfs::{CachedBackend, DirectBackend, Editor, NfsServer, OpenMode};
    pub use placeless_properties::*;
    pub use placeless_proplang::{register_proplang, ExtEnv, ScriptProperty};
    pub use placeless_repository::*;
    pub use placeless_simenv::{Link, LinkClass, VirtualClock};
}
